"""Unit tests for polytope volume / measure."""

import numpy as np
import pytest

from repro.geometry.polytope import ConvexPolytope
from repro.geometry.volume import polytope_measure, polytope_volume, volume_ratio


class TestVolume:
    def test_interval_length(self):
        poly = ConvexPolytope.from_interval(-1.0, 3.0)
        assert polytope_volume(poly) == pytest.approx(4.0)

    def test_square_area(self):
        poly = ConvexPolytope.from_points([[0, 0], [2, 0], [2, 2], [0, 2]])
        assert polytope_volume(poly) == pytest.approx(4.0)

    def test_triangle_area(self):
        poly = ConvexPolytope.from_points([[0, 0], [1, 0], [0, 1]])
        assert polytope_volume(poly) == pytest.approx(0.5)

    def test_cube_volume(self):
        assert polytope_volume(ConvexPolytope.unit_cube(3)) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert polytope_volume(ConvexPolytope.empty(2)) == 0.0

    def test_point_is_zero(self):
        assert polytope_volume(ConvexPolytope.singleton([1.0, 1.0])) == 0.0

    def test_flat_in_ambient_is_zero(self):
        seg = ConvexPolytope.from_points([[0, 0], [1, 1]])
        assert polytope_volume(seg) == 0.0

    def test_scaling_law(self):
        poly = ConvexPolytope.from_points(
            np.random.default_rng(0).normal(size=(8, 2))
        )
        assert polytope_volume(poly.scale(2.0)) == pytest.approx(
            4.0 * polytope_volume(poly), rel=1e-9
        )


class TestMeasure:
    def test_full_dim_equals_volume(self):
        poly = ConvexPolytope.from_points([[0, 0], [1, 0], [0, 1]])
        assert polytope_measure(poly) == pytest.approx(polytope_volume(poly))

    def test_segment_length_in_2d(self):
        seg = ConvexPolytope.from_points([[0, 0], [3, 4]])
        assert polytope_measure(seg) == pytest.approx(5.0)

    def test_flat_triangle_in_3d(self):
        tri = ConvexPolytope.from_points(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0]]
        )
        assert polytope_measure(tri) == pytest.approx(0.5)

    def test_point_measure_zero(self):
        assert polytope_measure(ConvexPolytope.singleton([1.0, 2.0])) == 0.0

    def test_empty_measure_zero(self):
        assert polytope_measure(ConvexPolytope.empty(3)) == 0.0


class TestRatio:
    def test_half(self):
        outer = ConvexPolytope.from_points([[0, 0], [2, 0], [2, 2], [0, 2]])
        inner = ConvexPolytope.from_points([[0, 0], [2, 0], [2, 1], [0, 1]])
        assert volume_ratio(inner, outer) == pytest.approx(0.5)

    def test_degenerate_pair_is_one(self):
        a = ConvexPolytope.singleton([0.0, 0.0])
        b = ConvexPolytope.singleton([1.0, 1.0])
        assert volume_ratio(a, b) == 1.0

    def test_positive_over_degenerate_is_inf(self):
        inner = ConvexPolytope.from_points([[0, 0], [1, 0], [0, 1]])
        outer = ConvexPolytope.singleton([0.0, 0.0])
        assert volume_ratio(inner, outer) == float("inf")
