"""Unit tests for subset-hull intersections (line 5 of Algorithm CC)."""

import numpy as np
import pytest
from itertools import combinations
from scipy.optimize import linprog

from repro.geometry.intersection import (
    intersect_hulls,
    intersect_subset_hulls,
    optimal_polytope_iz,
    subset_count,
    subset_intersection_is_nonempty,
)


def _in_hull_lp(q, verts):
    m = len(verts)
    res = linprog(
        np.zeros(m),
        A_eq=np.vstack([np.asarray(verts, dtype=float).T, np.ones(m)]),
        b_eq=np.concatenate([np.asarray(q, dtype=float), [1.0]]),
        bounds=[(0, None)] * m,
        method="highs",
    )
    return res.success


def _true_membership(q, points, f):
    return all(
        _in_hull_lp(q, np.delete(points, list(drop), axis=0))
        for drop in combinations(range(len(points)), f)
    )


class TestSubsetCount:
    def test_values(self):
        assert subset_count(5, 1) == 5
        assert subset_count(6, 2) == 15
        assert subset_count(7, 0) == 1


class Test1d:
    def test_order_statistics(self):
        pts = np.array([[0.0], [1.0], [2.0], [3.0], [4.0]])
        poly = intersect_subset_hulls(pts, f=1)
        assert poly.interval() == (1.0, 3.0)

    def test_f2(self):
        pts = np.arange(7, dtype=float).reshape(-1, 1)
        poly = intersect_subset_hulls(pts, f=2)
        assert poly.interval() == (2.0, 4.0)

    def test_empty_when_too_few(self):
        pts = np.array([[0.0], [10.0]])
        poly = intersect_subset_hulls(pts, f=1)
        assert poly.is_empty

    def test_duplicates_matter(self):
        # Two copies of 0 protect it: dropping one leaves the other.
        pts = np.array([[0.0], [0.0], [5.0]])
        poly = intersect_subset_hulls(pts, f=1)
        assert poly.interval()[0] == pytest.approx(0.0)

    def test_f0_is_hull(self):
        pts = np.array([[3.0], [1.0]])
        poly = intersect_subset_hulls(pts, f=0)
        assert poly.interval() == (1.0, 3.0)


class Test2d:
    def test_square_plus_center(self):
        pts = np.array([[0, 0], [4, 0], [0, 4], [4, 4], [2, 2]], dtype=float)
        poly = intersect_subset_hulls(pts, f=1)
        assert poly.is_point
        np.testing.assert_allclose(poly.vertices[0], [2.0, 2.0], atol=1e-7)

    def test_agrees_with_lp_oracle(self):
        rng = np.random.default_rng(5)
        for trial in range(5):
            pts = rng.normal(size=(7, 2)) * 2
            poly = intersect_subset_hulls(pts, f=1)
            for _ in range(15):
                q = rng.normal(size=2) * 2
                expected = _true_membership(q, pts, 1)
                got = (not poly.is_empty) and poly.contains_point(q, tol=1e-7)
                assert got == expected, f"trial {trial}, q={q}"

    def test_f2(self):
        rng = np.random.default_rng(6)
        pts = rng.normal(size=(9, 2))
        poly = intersect_subset_hulls(pts, f=2)
        for _ in range(10):
            q = rng.normal(size=2)
            expected = _true_membership(q, pts, 2)
            got = (not poly.is_empty) and poly.contains_point(q, tol=1e-7)
            assert got == expected

    def test_collinear_points(self):
        pts = np.outer(np.arange(5, dtype=float), [1.0, 1.0])
        poly = intersect_subset_hulls(pts, f=1)
        assert not poly.is_empty
        assert poly.affine_dim <= 1
        assert poly.contains_point([2.0, 2.0])
        assert not poly.contains_point([0.0, 0.0])

    def test_all_identical(self):
        pts = np.tile([1.0, 2.0], (5, 1))
        poly = intersect_subset_hulls(pts, f=1)
        assert poly.is_point


class Test3d:
    def test_agrees_with_lp_oracle(self):
        rng = np.random.default_rng(7)
        pts = rng.normal(size=(9, 3))
        poly = intersect_subset_hulls(pts, f=1)
        for _ in range(20):
            q = rng.normal(size=3) * 0.8
            expected = _true_membership(q, pts, 1)
            got = (not poly.is_empty) and poly.contains_point(q, tol=1e-7)
            assert got == expected

    def test_contained_in_full_hull(self):
        rng = np.random.default_rng(8)
        pts = rng.normal(size=(10, 3))
        poly = intersect_subset_hulls(pts, f=1)
        from repro.geometry.polytope import ConvexPolytope

        hull = ConvexPolytope.from_points(pts)
        assert hull.contains_polytope(poly)


class TestValidation:
    def test_negative_f(self):
        with pytest.raises(ValueError):
            intersect_subset_hulls(np.zeros((3, 2)), f=-1)

    def test_f_too_large(self):
        with pytest.raises(ValueError):
            intersect_subset_hulls(np.zeros((3, 2)), f=3)

    def test_intersect_hulls_empty_list(self):
        with pytest.raises(ValueError):
            intersect_hulls([], dim=2)


class TestNonemptiness:
    def test_tverberg_guarantee(self):
        # m >= (d+1)f + 1 guarantees non-empty (Lemma 2 via Theorem 5).
        rng = np.random.default_rng(9)
        for d in (1, 2, 3):
            for f in (1, 2):
                m = (d + 1) * f + 1
                for seed in range(5):
                    pts = np.random.default_rng(seed).normal(size=(m, d))
                    assert subset_intersection_is_nonempty(pts, f), (d, f, seed)
                    poly = intersect_subset_hulls(pts, f)
                    assert not poly.is_empty

    def test_below_guarantee_can_be_empty(self):
        # d=2, f=1, m=3 (< (d+1)f+1 = 4): a triangle's subset
        # intersection of its three edges is empty.
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        assert not subset_intersection_is_nonempty(pts, 1)
        assert intersect_subset_hulls(pts, 1).is_empty

    def test_nonempty_agrees_with_full_computation(self):
        rng = np.random.default_rng(10)
        for m in (3, 4, 5, 6):
            pts = rng.normal(size=(m, 2))
            fast = subset_intersection_is_nonempty(pts, 1)
            full = not intersect_subset_hulls(pts, 1).is_empty
            assert fast == full, m


class TestIz:
    def test_iz_equals_subset_intersection(self):
        rng = np.random.default_rng(11)
        pts = rng.normal(size=(6, 2))
        iz = optimal_polytope_iz(pts, 1)
        direct = intersect_subset_hulls(pts, 1)
        assert iz.approx_equal(direct)
