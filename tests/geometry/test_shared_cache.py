"""Tests for the shared cross-worker disk cache (repro.geometry.shared_cache).

Covers the satellite checklist: concurrent multi-process read/write
safety, corruption tolerance (truncated entries recompute instead of
crashing), append-only semantics, the local/foreign hit provenance split,
and bit-identity of cached vs. recomputed results under both
``REPRO_GEOMETRY_BATCH`` settings.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.geometry.batch import batch_override
from repro.geometry.cache import PERF, clear_geometry_caches
from repro.geometry.combination import linear_combination
from repro.geometry.intersection import intersect_subset_hulls
from repro.geometry.polytope import ConvexPolytope
from repro.geometry.shared_cache import (
    content_key,
    load_arrays,
    load_float,
    load_polytope,
    reset_written_keys,
    set_shared_cache_dir,
    shared_cache_dir,
    shared_cache_enabled,
    store_arrays,
    store_float,
    store_polytope,
)


@pytest.fixture()
def cache_dir(tmp_path):
    """Route the shared cache at a temp dir for the duration of a test."""
    previous = set_shared_cache_dir(tmp_path)
    reset_written_keys()
    clear_geometry_caches()
    yield tmp_path
    set_shared_cache_dir(previous)
    reset_written_keys()
    clear_geometry_caches()


def family(seed, k=3, d=2):
    rng = np.random.default_rng(seed)
    return [
        ConvexPolytope.from_points(rng.normal(size=(8, d))) for _ in range(k)
    ]


class TestConfiguration:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        previous = set_shared_cache_dir(None)
        try:
            assert shared_cache_dir() is None
            assert not shared_cache_enabled()
            assert load_arrays("0" * 64) is None
            assert not store_arrays("0" * 64, {"x": np.zeros(3)})
        finally:
            set_shared_cache_dir(previous)

    def test_env_var_enables(self, monkeypatch, tmp_path):
        previous = set_shared_cache_dir(None)
        try:
            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
            assert shared_cache_dir() == tmp_path
            monkeypatch.delenv("REPRO_CACHE_DIR")
            assert shared_cache_dir() is None
        finally:
            set_shared_cache_dir(previous)

    def test_override_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        previous = set_shared_cache_dir(tmp_path / "override")
        try:
            assert shared_cache_dir() == tmp_path / "override"
            set_shared_cache_dir("")  # force-disable regardless of env
            assert shared_cache_dir() is None
        finally:
            set_shared_cache_dir(previous)


class TestContentKeys:
    def test_bit_identical_inputs_share_keys(self):
        a = np.arange(6, dtype=float).reshape(3, 2)
        assert content_key("op", [a]) == content_key("op", [a.copy()])

    def test_any_difference_changes_key(self):
        a = np.arange(6, dtype=float).reshape(3, 2)
        base = content_key("op", [a])
        assert content_key("other", [a]) != base
        assert content_key("op", [a], params=(1,)) != base
        assert content_key("op", [a + 1e-300]) != base  # bit-level change
        assert content_key("op", [a.reshape(2, 3)]) != base  # shape matters


class TestRoundTrips:
    def test_arrays(self, cache_dir):
        key = content_key("t", [np.ones(3)])
        arrays = {"x": np.linspace(0, 1, 7), "y": np.eye(3)}
        assert store_arrays(key, arrays)
        loaded = load_arrays(key)
        assert set(loaded) == {"x", "y"}
        assert np.array_equal(loaded["x"], arrays["x"])
        assert np.array_equal(loaded["y"], arrays["y"])

    def test_polytope_and_empty(self, cache_dir):
        poly = family(0)[0]
        key = content_key("p", [poly.vertices])
        store_polytope(key, poly)
        back = load_polytope(key)
        assert back.dim == poly.dim
        assert np.array_equal(back.vertices, poly.vertices)
        empty = ConvexPolytope.empty(3)
        key2 = content_key("p", [empty.vertices], params=("empty",))
        store_polytope(key2, empty)
        back2 = load_polytope(key2)
        assert back2.is_empty and back2.dim == 3

    def test_float(self, cache_dir):
        key = content_key("f", [np.array([2.0])])
        store_float(key, 0.1 + 0.2)
        assert load_float(key) == 0.1 + 0.2  # exact bits, not approx

    def test_append_only(self, cache_dir):
        key = content_key("a", [np.zeros(2)])
        assert store_arrays(key, {"v": np.array([1.0])})
        # A second write with different content is refused: first wins.
        assert not store_arrays(key, {"v": np.array([2.0])})
        assert float(load_arrays(key)["v"][0]) == 1.0


class TestCorruptionTolerance:
    def _all_entry_files(self, root):
        return [
            os.path.join(base, name)
            for base, _, names in os.walk(root)
            for name in names
        ]

    def test_truncated_entry_recomputes(self, cache_dir):
        polys = family(1)
        ref = linear_combination(polys, [0.5, 0.25, 0.25])
        files = self._all_entry_files(cache_dir)
        assert files
        for path in files:
            with open(path, "r+b") as fh:
                fh.truncate(8)
        clear_geometry_caches()
        errors_before = PERF.shared_cache_errors
        again = linear_combination(polys, [0.5, 0.25, 0.25])
        assert PERF.shared_cache_errors > errors_before
        assert np.array_equal(ref.vertices, again.vertices)

    def test_garbage_entry_recomputes(self, cache_dir):
        key = content_key("g", [np.ones(1)])
        store_arrays(key, {"v": np.ones(1)})
        for path in self._all_entry_files(cache_dir):
            with open(path, "wb") as fh:
                fh.write(b"not an npz file")
        assert load_arrays(key) is None

    def test_unwritable_directory_is_harmless(self, cache_dir):
        # Pointing the cache at a path that cannot be created must not
        # break computation — errors count, results still come back.
        set_shared_cache_dir(os.path.join(os.devnull, "nope"))
        errors_before = PERF.shared_cache_errors
        result = linear_combination(family(2), [0.5, 0.25, 0.25])
        assert result.num_vertices > 0
        assert PERF.shared_cache_errors >= errors_before


class TestHitProvenance:
    def test_local_vs_foreign_split(self, cache_dir):
        polys = family(3)
        linear_combination(polys, [0.2, 0.3, 0.5])  # miss + write
        clear_geometry_caches()
        before_local = PERF.shared_cache_hits_local
        linear_combination(polys, [0.2, 0.3, 0.5])  # disk hit, our own key
        assert PERF.shared_cache_hits_local == before_local + 1
        # Forgetting written keys models a different process reading the
        # same directory: the same hit is now foreign.
        reset_written_keys()
        clear_geometry_caches()
        before_foreign = PERF.shared_cache_hits_foreign
        linear_combination(polys, [0.2, 0.3, 0.5])
        assert PERF.shared_cache_hits_foreign == before_foreign + 1

    def test_offered_but_lost_race_counts_local(self, cache_dir):
        key = content_key("race", [np.arange(3.0)])
        store_arrays(key, {"v": np.zeros(1)})
        # Same key offered again (write refused — entry exists) still
        # marks the key as locally computed.
        store_arrays(key, {"v": np.zeros(1)})
        before = PERF.shared_cache_hits_local
        load_arrays(key)
        assert PERF.shared_cache_hits_local == before + 1


class TestBitIdentityBothBatchSettings:
    @pytest.mark.parametrize("batch_on", [False, True])
    def test_cached_equals_recomputed(self, cache_dir, batch_on):
        rng = np.random.default_rng(11)
        pts = rng.normal(size=(9, 2))
        polys = family(4)
        with batch_override(batch_on):
            comb_cold = linear_combination(polys, [0.5, 0.25, 0.25])
            inter_cold = intersect_subset_hulls(pts, 2)
            clear_geometry_caches()  # force the disk path
            comb_warm = linear_combination(polys, [0.5, 0.25, 0.25])
            inter_warm = intersect_subset_hulls(pts, 2)
        assert np.array_equal(comb_cold.vertices, comb_warm.vertices)
        assert np.array_equal(inter_cold.vertices, inter_warm.vertices)
        # And across settings: the combination kernel is batch-agnostic.
        set_shared_cache_dir("")
        clear_geometry_caches()
        with batch_override(not batch_on):
            comb_other = linear_combination(polys, [0.5, 0.25, 0.25])
        assert np.array_equal(comb_cold.vertices, comb_other.vertices)


def _concurrent_worker(args):
    """Worker for the concurrency test: compute/load the same jobs."""
    cache_dir, seed = args
    set_shared_cache_dir(cache_dir)
    clear_geometry_caches()
    # Every worker computes the same family in a different order, so all
    # of them race to publish the same keys.
    polys = family(77)
    weights = [[0.5, 0.25, 0.25], [0.2, 0.3, 0.5], [1 / 3, 1 / 3, 1 / 3]]
    order = np.random.default_rng(seed).permutation(len(weights))
    out = []
    for idx in order:
        res = linear_combination(polys, weights[idx])
        out.append((int(idx), res.vertices.tobytes()))
    return sorted(out)


class TestConcurrency:
    def test_many_processes_one_directory(self, tmp_path):
        """Racing writers/readers agree bit-for-bit and never crash."""
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(3) as pool:
            results = pool.map(
                _concurrent_worker, [(str(tmp_path), s) for s in range(6)]
            )
        assert all(r == results[0] for r in results[1:])
        # The cache now holds exactly one entry per distinct job.
        files = [
            name
            for _, _, names in os.walk(tmp_path)
            for name in names
            if name.endswith(".npz")
        ]
        assert len(files) == 3
