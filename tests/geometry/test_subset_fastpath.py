"""Unit tests for the Tukey-depth subset-intersection fast path.

Covers the pieces the property suite
(``tests/property/test_subset_fastpath_properties.py``) exercises only
end-to-end: mode selection and its cache interaction, the cost-rule
routing, the candidate-halfspace generator's validation and counters,
and the Tverberg short-circuit in the nonemptiness test.
"""

import numpy as np
import pytest

from repro.geometry.cache import PERF, SUBSET_CACHE, clear_geometry_caches
from repro.geometry.errors import DegenerateInputError
from repro.geometry.halfspaces import vertices_of_halfspace_system
from repro.geometry.intersection import (
    depth_region_halfspaces,
    intersect_subset_hulls,
    set_subset_mode,
    subset_count,
    subset_intersection_is_nonempty,
    subset_mode,
    subset_mode_override,
)


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_geometry_caches()
    yield
    set_subset_mode("auto")
    clear_geometry_caches()


class TestModeSelection:
    def test_default_mode_is_auto(self):
        assert subset_mode() == "auto"

    def test_set_returns_previous(self):
        assert set_subset_mode("depth") == "auto"
        assert set_subset_mode("enumerate") == "depth"
        assert subset_mode() == "enumerate"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="subset mode"):
            set_subset_mode("fastest")
        assert subset_mode() == "auto"

    def test_override_restores_on_exit(self):
        with subset_mode_override("enumerate"):
            assert subset_mode() == "enumerate"
            with subset_mode_override("depth"):
                assert subset_mode() == "depth"
            assert subset_mode() == "enumerate"
        assert subset_mode() == "auto"

    def test_mode_change_clears_subset_cache(self):
        pts = np.random.default_rng(0).normal(size=(9, 2))
        intersect_subset_hulls(pts, 2)
        assert len(SUBSET_CACHE) == 1
        set_subset_mode("enumerate")
        assert len(SUBSET_CACHE) == 0

    def test_noop_mode_change_keeps_cache(self):
        pts = np.random.default_rng(0).normal(size=(9, 2))
        intersect_subset_hulls(pts, 2)
        set_subset_mode(subset_mode())
        assert len(SUBSET_CACHE) == 1

    def test_invalid_env_value_warns_and_falls_back(self, monkeypatch):
        from repro.geometry.intersection import _mode_from_env

        monkeypatch.setenv("REPRO_SUBSET_MODE", "bogus")
        with pytest.warns(UserWarning, match="REPRO_SUBSET_MODE"):
            assert _mode_from_env() == "auto"
        monkeypatch.setenv("REPRO_SUBSET_MODE", "enumerate")
        assert _mode_from_env() == "enumerate"

    def test_env_switch_takes_effect_at_runtime(self, monkeypatch):
        # The env var is re-read on every subset_mode() call; a runtime
        # change behaves like set_subset_mode (including the cache clear),
        # so A/B harnesses flipping the variable between arms never see
        # entries computed under the other path.
        pts = np.random.default_rng(0).normal(size=(9, 2))
        intersect_subset_hulls(pts, 2)
        assert len(SUBSET_CACHE) == 1
        monkeypatch.setenv("REPRO_SUBSET_MODE", "enumerate")
        assert subset_mode() == "enumerate"
        assert len(SUBSET_CACHE) == 0
        monkeypatch.delenv("REPRO_SUBSET_MODE")
        assert subset_mode() == "auto"

    def test_unchanged_env_does_not_override_set_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUBSET_MODE", "depth")
        assert subset_mode() == "depth"
        set_subset_mode("enumerate")
        # The env var did not change again, so the explicit setting wins.
        assert subset_mode() == "enumerate"


class TestAutoRouting:
    """``auto`` takes the depth path exactly when C(m, f) > C(m, d)."""

    def _fast_hits(self, pts, f):
        clear_geometry_caches()
        before = PERF.snapshot()
        intersect_subset_hulls(pts, f)
        return PERF.diff(before)["subset_fast_path_hits"]

    def test_routes_to_depth_when_enumeration_larger(self):
        pts = np.random.default_rng(1).normal(size=(12, 2))
        assert subset_count(12, 5) > subset_count(12, 2)
        assert self._fast_hits(pts, 5) == 1

    def test_routes_to_enumeration_when_smaller(self):
        pts = np.random.default_rng(1).normal(size=(8, 2))
        assert subset_count(8, 1) < subset_count(8, 2)
        assert self._fast_hits(pts, 1) == 0

    def test_forced_depth_ignores_cost_rule(self):
        pts = np.random.default_rng(1).normal(size=(8, 2))
        with subset_mode_override("depth"):
            assert self._fast_hits(pts, 1) == 1

    def test_forced_enumerate_ignores_cost_rule(self):
        pts = np.random.default_rng(1).normal(size=(12, 2))
        with subset_mode_override("enumerate"):
            assert self._fast_hits(pts, 5) == 0


class TestDepthRegionHalfspaces:
    def test_rejects_dimension_below_two(self):
        with pytest.raises(ValueError, match="dimension >= 2"):
            depth_region_halfspaces(np.zeros((4, 1)), 1)

    def test_rejects_out_of_range_f(self):
        pts = np.random.default_rng(2).normal(size=(5, 2))
        with pytest.raises(ValueError, match="0 <= f <= m - 1"):
            depth_region_halfspaces(pts, 5)
        with pytest.raises(ValueError, match="0 <= f <= m - 1"):
            depth_region_halfspaces(pts, -1)

    def test_degenerate_input_raises(self):
        # Coincident points span no hyperplane at all; callers must
        # chart-project degenerate multisets before calling.
        pts = np.ones((4, 2)) * 2.5
        with pytest.raises(DegenerateInputError):
            depth_region_halfspaces(pts, 1)

    def test_f_zero_system_is_the_hull(self):
        square = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0]])
        a, b = depth_region_halfspaces(square, 0)
        # Every input point satisfies the system (it describes conv(X)) ...
        assert np.all(square @ a.T <= b[None, :] + 1e-9)
        # ... and its vertices are exactly the square's corners.
        verts = vertices_of_halfspace_system(a, b)
        got = {tuple(np.round(v, 9)) for v in verts}
        assert got == {(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)}

    def test_system_is_bounded_region(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(10, 2)) * 3.0
        a, b = depth_region_halfspaces(pts, 1)
        verts = vertices_of_halfspace_system(a, b)
        assert verts.shape[0] >= 1
        assert float(np.abs(verts).max()) <= 2 * float(np.abs(pts).max())

    def test_perf_counters_advance(self):
        pts = np.random.default_rng(4).normal(size=(9, 2))
        before = PERF.snapshot()
        depth_region_halfspaces(pts, 2)
        delta = PERF.diff(before)
        assert delta["depth_halfspace_candidates"] > 0
        assert 0 < delta["depth_halfspaces_kept"] <= delta["depth_halfspace_candidates"]

    def test_block_size_does_not_change_result(self):
        # Blocking changes only the order rows are generated in, never the
        # region they describe.
        pts = np.random.default_rng(5).normal(size=(11, 2))
        a1, b1 = depth_region_halfspaces(pts, 2)
        a2, b2 = depth_region_halfspaces(pts, 2, block=7)
        sys1 = sorted(map(tuple, np.round(np.column_stack([a1, b1]), 9)))
        sys2 = sorted(map(tuple, np.round(np.column_stack([a2, b2]), 9)))
        assert sys1 == sys2


class TestAutoRoutingNonemptiness:
    """The nonemptiness LP applies the same cost rule as the constructor."""

    def _fast_hits(self, pts, f):
        clear_geometry_caches()
        before = PERF.snapshot()
        subset_intersection_is_nonempty(pts, f, use_tverberg_shortcut=False)
        return PERF.diff(before)["subset_fast_path_hits"]

    def test_routes_to_enumeration_when_smaller(self):
        pts = np.random.default_rng(1).normal(size=(8, 2))
        assert subset_count(8, 1) < subset_count(8, 2)
        assert self._fast_hits(pts, 1) == 0

    def test_routes_to_depth_when_enumeration_larger(self):
        pts = np.random.default_rng(1).normal(size=(8, 2))
        assert subset_count(8, 5) > subset_count(8, 2)
        assert self._fast_hits(pts, 5) == 1


class TestTranslatedData:
    """Tolerance scales must derive from the data's *extent*, not its
    coordinate magnitude: deriving span_tol from max |coordinate| made
    depth_region_halfspaces reject every candidate hyperplane for a unit
    cluster translated to ~1e6 and raise DegenerateInputError."""

    def test_translated_cluster_does_not_crash(self):
        # The exact crash configuration: m=12, d=3, f=4, N(0,1) + 1e6,
        # default auto mode (C(12,4) = 495 > C(12,3) = 220 routes depth).
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(12, 3)) + 1e6
        poly = intersect_subset_hulls(pts, 4)
        nonempty = subset_intersection_is_nonempty(
            pts, 4, use_tverberg_shortcut=False
        )
        assert nonempty == (not poly.is_empty)

    def test_kept_system_is_translation_invariant(self):
        rng = np.random.default_rng(8)
        pts = rng.normal(size=(9, 2))
        a0, b0 = depth_region_halfspaces(pts, 2)
        shift = np.array([1e6, -1e6])
        a1, b1 = depth_region_halfspaces(pts + shift, 2)
        assert a0.shape == a1.shape
        np.testing.assert_allclose(a1, a0, atol=1e-9)
        np.testing.assert_allclose(b1 - a1 @ shift, b0, atol=1e-6)


class TestTverbergShortcut:
    def test_shortcut_answers_without_geometry(self):
        # m = 10 >= (2+1)*3 + 1: guaranteed non-empty by Tverberg.
        pts = np.random.default_rng(6).normal(size=(10, 2))
        before = PERF.snapshot()
        assert subset_intersection_is_nonempty(pts, 3)
        delta = PERF.diff(before)
        assert delta["subset_fast_path_hits"] == 0
        assert delta["depth_halfspace_candidates"] == 0

    def test_disable_flag_forces_the_lp(self):
        pts = np.random.default_rng(6).normal(size=(10, 2))
        before = PERF.snapshot()
        assert subset_intersection_is_nonempty(
            pts, 3, use_tverberg_shortcut=False
        )
        assert PERF.diff(before)["subset_fast_path_hits"] == 1

    def test_below_guarantee_detects_emptiness(self):
        # A triangle with f = 1 intersects its three edges: empty.
        tri = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        assert not subset_intersection_is_nonempty(tri, 1)
        assert not subset_intersection_is_nonempty(
            tri, 1, use_tverberg_shortcut=False
        )

    def test_f_zero_and_undersized_multisets(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert subset_intersection_is_nonempty(pts, 0)
        assert not subset_intersection_is_nonempty(pts, 2)
