"""Unit tests for the Hausdorff distance (paper Eq. 1)."""

import numpy as np
import pytest

from repro.geometry.errors import DimensionMismatchError, EmptyPolytopeError
from repro.geometry.hausdorff import (
    directed_hausdorff,
    disagreement_diameter,
    hausdorff_distance,
    hausdorff_to_point,
)
from repro.geometry.polytope import ConvexPolytope


def square(offset=(0.0, 0.0), side=1.0):
    base = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float) * side
    return ConvexPolytope.from_points(base + np.asarray(offset))


class TestDirected:
    def test_identical_is_zero(self):
        s = square()
        assert directed_hausdorff(s, s) == 0.0

    def test_subset_is_zero_one_way(self):
        outer = square(side=3.0)
        inner = square(offset=(1.0, 1.0))
        assert directed_hausdorff(inner, outer) == pytest.approx(0.0, abs=1e-12)
        assert directed_hausdorff(outer, inner) > 0.1

    def test_translation(self):
        a = square()
        b = square(offset=(2.0, 0.0))
        assert directed_hausdorff(a, b) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(EmptyPolytopeError):
            directed_hausdorff(square(), ConvexPolytope.empty(2))

    def test_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            directed_hausdorff(square(), ConvexPolytope.from_interval(0, 1))


class TestSymmetric:
    def test_translation_distance(self):
        assert hausdorff_distance(square(), square(offset=(0.0, 3.0))) == pytest.approx(3.0)

    def test_nested_squares(self):
        outer = square(side=2.0)
        inner = square(offset=(0.5, 0.5))
        # farthest outer point (0,0) or (2,2) from inner [0.5,1.5]^2
        assert hausdorff_distance(outer, inner) == pytest.approx(np.sqrt(0.5))

    def test_point_vs_polytope(self):
        p = ConvexPolytope.singleton([0.0, 0.0])
        s = square(offset=(1.0, 0.0))
        assert hausdorff_distance(p, s) == pytest.approx(np.sqrt(5.0))

    def test_intervals(self):
        a = ConvexPolytope.from_interval(0.0, 1.0)
        b = ConvexPolytope.from_interval(0.25, 2.0)
        assert hausdorff_distance(a, b) == pytest.approx(1.0)

    def test_metric_axioms_sample(self):
        rng = np.random.default_rng(0)
        polys = [
            ConvexPolytope.from_points(rng.normal(size=(5, 2)))
            for _ in range(4)
        ]
        for a in polys:
            assert hausdorff_distance(a, a) == 0.0
            for b in polys:
                ab = hausdorff_distance(a, b)
                assert ab == pytest.approx(hausdorff_distance(b, a), abs=1e-10)
                for c in polys:
                    assert ab <= (
                        hausdorff_distance(a, c) + hausdorff_distance(c, b) + 1e-9
                    )


class TestDiameter:
    def test_empty_list(self):
        assert disagreement_diameter([]) == 0.0

    def test_single(self):
        assert disagreement_diameter([square()]) == 0.0

    def test_max_pairwise(self):
        polys = [square(), square(offset=(1.0, 0.0)), square(offset=(5.0, 0.0))]
        assert disagreement_diameter(polys) == pytest.approx(5.0)


class TestHausdorffToPoint:
    def test_farthest_vertex(self):
        s = square(side=2.0)
        assert hausdorff_to_point(s, [0.0, 0.0]) == pytest.approx(np.sqrt(8.0))

    def test_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            hausdorff_to_point(square(), [0.0])

    def test_empty(self):
        with pytest.raises(EmptyPolytopeError):
            hausdorff_to_point(ConvexPolytope.empty(2), [0.0, 0.0])
