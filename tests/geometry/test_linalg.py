"""Unit tests for affine-subspace utilities."""

import numpy as np
import pytest

from repro.geometry.errors import DimensionMismatchError
from repro.geometry.linalg import (
    affine_chart,
    affine_rank,
    as_points_array,
    deduplicate_points,
)


class TestAsPointsArray:
    def test_nested_list(self):
        arr = as_points_array([[1, 2], [3, 4]])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64

    def test_single_point_promotes(self):
        arr = as_points_array([1.0, 2.0, 3.0])
        assert arr.shape == (1, 3)

    def test_dim_validation(self):
        with pytest.raises(DimensionMismatchError):
            as_points_array([[1, 2]], dim=3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            as_points_array([[np.nan, 0.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            as_points_array([[np.inf, 0.0]])

    def test_rejects_3d_array(self):
        with pytest.raises(DimensionMismatchError):
            as_points_array(np.zeros((2, 2, 2)))


class TestAffineRank:
    def test_single_point(self):
        assert affine_rank([[3.0, 4.0]]) == 0

    def test_two_distinct_points(self):
        assert affine_rank([[0.0, 0.0], [1.0, 1.0]]) == 1

    def test_coincident_points(self):
        assert affine_rank([[2.0, 2.0], [2.0, 2.0], [2.0, 2.0]]) == 0

    def test_collinear_in_3d(self):
        pts = np.outer(np.linspace(0, 1, 5), [1.0, 2.0, 3.0])
        assert affine_rank(pts) == 1

    def test_planar_in_3d(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=(10, 2))
        pts = coeffs @ np.array([[1.0, 0.0, 1.0], [0.0, 1.0, -1.0]])
        assert affine_rank(pts) == 2

    def test_full_rank(self):
        rng = np.random.default_rng(1)
        assert affine_rank(rng.normal(size=(10, 3))) == 3

    def test_scale_invariance(self):
        pts = np.outer(np.linspace(0, 1, 4), [1.0, 1.0]) * 1e6
        assert affine_rank(pts) == 1


class TestAffineChart:
    def test_roundtrip_is_identity_on_subspace(self):
        rng = np.random.default_rng(2)
        line = np.outer(rng.normal(size=6), [0.6, 0.8]) + np.array([1.0, -1.0])
        chart = affine_chart(line)
        assert chart.local_dim == 1
        back = chart.to_ambient(chart.to_local(line))
        np.testing.assert_allclose(back, line, atol=1e-10)

    def test_isometry(self):
        rng = np.random.default_rng(3)
        plane_basis = np.array([[1.0, 0.0, 2.0], [0.0, 1.0, -1.0]])
        pts = rng.normal(size=(8, 2)) @ plane_basis
        chart = affine_chart(pts)
        local = chart.to_local(pts)
        orig = np.linalg.norm(pts[0] - pts[1])
        mapped = np.linalg.norm(local[0] - local[1])
        assert mapped == pytest.approx(orig, rel=1e-12)

    def test_single_point_chart(self):
        chart = affine_chart([[5.0, 6.0]])
        assert chart.local_dim == 0
        assert chart.ambient_dim == 2

    def test_distance_from_subspace(self):
        line = np.array([[0.0, 0.0], [1.0, 0.0]])
        chart = affine_chart(line)
        dist = chart.distance_from_subspace(np.array([[0.5, 2.0]]))
        assert dist[0] == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            affine_chart(np.zeros((0, 2)))

    def test_to_ambient_dim_check(self):
        chart = affine_chart([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(DimensionMismatchError):
            chart.to_ambient(np.zeros((1, 2)))


class TestDeduplicatePoints:
    def test_removes_exact_duplicates(self):
        pts = np.array([[1.0, 2.0], [1.0, 2.0], [3.0, 4.0]])
        out = deduplicate_points(pts)
        assert out.shape == (2, 2)

    def test_keeps_first_occurrence_order(self):
        pts = np.array([[3.0, 4.0], [1.0, 2.0], [3.0, 4.0]])
        out = deduplicate_points(pts)
        np.testing.assert_array_equal(out[0], [3.0, 4.0])
        np.testing.assert_array_equal(out[1], [1.0, 2.0])

    def test_distinct_points_survive(self):
        rng = np.random.default_rng(4)
        pts = rng.normal(size=(50, 3))
        assert deduplicate_points(pts).shape == (50, 3)

    def test_single_point(self):
        out = deduplicate_points([[1.0]])
        assert out.shape == (1, 1)

    def test_near_duplicates_within_tol(self):
        pts = np.array([[0.0, 0.0], [1e-15, 1e-15], [1.0, 1.0]])
        out = deduplicate_points(pts, tol=1e-12)
        assert out.shape[0] == 2
