"""Unit tests for H-representations and halfspace vertex enumeration."""

import numpy as np
import pytest

from repro.geometry.errors import InfeasibleRegionError
from repro.geometry.halfspaces import (
    chebyshev_center,
    dedupe_halfspaces,
    feasible_point,
    hrep_of_hull,
    linear_maximize,
    vertices_of_halfspace_system,
)


def _unit_square_system():
    a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
    b = np.array([1.0, 0.0, 1.0, 0.0])
    return a, b


class TestHrepOfHull:
    def test_square_hrep_contains_exactly_the_square(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        a, b = hrep_of_hull(square)
        inside = np.array([0.5, 0.5])
        outside = np.array([1.5, 0.5])
        assert np.all(a @ inside <= b + 1e-12)
        assert np.any(a @ outside > b + 1e-12)

    def test_1d_hull(self):
        a, b = hrep_of_hull(np.array([[2.0], [5.0], [3.0]]))
        assert np.all(a @ np.array([4.0]) <= b + 1e-12)
        assert np.any(a @ np.array([6.0]) > b)

    def test_segment_in_2d_has_equalities(self):
        seg = np.array([[0.0, 0.0], [2.0, 2.0]])
        a, b = hrep_of_hull(seg)
        on = np.array([1.0, 1.0])
        off_line = np.array([1.0, 1.2])
        beyond = np.array([3.0, 3.0])
        assert np.all(a @ on <= b + 1e-9)
        assert np.any(a @ off_line > b + 1e-9)
        assert np.any(a @ beyond > b + 1e-9)

    def test_single_point(self):
        a, b = hrep_of_hull(np.array([[1.0, 2.0]]))
        assert np.all(np.abs(a @ np.array([1.0, 2.0]) - b) <= 1e-9)
        assert np.any(a @ np.array([1.1, 2.0]) > b + 1e-9)

    def test_3d_simplex(self):
        simplex = np.vstack([np.zeros(3), np.eye(3)])
        a, b = hrep_of_hull(simplex)
        assert np.all(a @ np.full(3, 0.1) <= b + 1e-12)
        assert np.any(a @ np.full(3, 0.5) > b + 1e-12)

    def test_empty_raises(self):
        with pytest.raises(InfeasibleRegionError):
            hrep_of_hull(np.zeros((0, 2)))


class TestDedupe:
    def test_exact_duplicates_collapse(self):
        a = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        b = np.array([1.0, 1.0, 2.0])
        a2, b2 = dedupe_halfspaces(a, b)
        assert a2.shape[0] == 2

    def test_keeps_tightest_offset(self):
        a = np.array([[1.0, 0.0], [1.0, 0.0]])
        b = np.array([2.0, 1.0])
        a2, b2 = dedupe_halfspaces(a, b)
        assert b2.tolist() == [1.0]

    def test_normalises_scaling(self):
        a = np.array([[2.0, 0.0], [1.0, 0.0]])
        b = np.array([4.0, 2.0])  # same halfspace x <= 2
        a2, b2 = dedupe_halfspaces(a, b)
        assert a2.shape[0] == 1
        assert b2[0] == pytest.approx(2.0)

    def test_drops_zero_rows(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([1.0, 1.0])
        a2, _ = dedupe_halfspaces(a, b)
        assert a2.shape[0] == 1


class TestChebyshev:
    def test_unit_square(self):
        a, b = _unit_square_system()
        center, radius = chebyshev_center(a, b)
        np.testing.assert_allclose(center, [0.5, 0.5], atol=1e-8)
        assert radius == pytest.approx(0.5, abs=1e-8)

    def test_infeasible(self):
        a = np.array([[1.0], [-1.0]])
        b = np.array([0.0, -1.0])  # x <= 0 and x >= 1
        with pytest.raises(InfeasibleRegionError):
            chebyshev_center(a, b)

    def test_feasible_point(self):
        a, b = _unit_square_system()
        p = feasible_point(a, b)
        assert np.all(a @ p <= b + 1e-9)

    def test_degenerate_region_zero_radius(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([1.0, -1.0, 2.0, 0.0])  # x == 1, 0 <= y <= 2
        _, radius = chebyshev_center(a, b)
        assert radius == pytest.approx(0.0, abs=1e-9)


class TestLinearMaximize:
    def test_direction(self):
        a, b = _unit_square_system()
        argmax, value = linear_maximize(a, b, np.array([1.0, 1.0]))
        assert value == pytest.approx(2.0, abs=1e-8)
        np.testing.assert_allclose(argmax, [1.0, 1.0], atol=1e-8)


class TestVertexEnumeration:
    def test_unit_square(self):
        a, b = _unit_square_system()
        verts = vertices_of_halfspace_system(a, b)
        expected = {(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)}
        assert {tuple(np.round(v, 9)) for v in verts} == expected

    def test_empty_region(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([0.0, -1.0])
        verts = vertices_of_halfspace_system(a, b)
        assert verts.shape[0] == 0

    def test_single_point_region(self):
        a = np.array([[1.0, 0], [-1.0, 0], [0, 1.0], [0, -1.0]])
        b = np.array([1.0, -1.0, 1.0, -1.0])  # x == 1, y == 1
        verts = vertices_of_halfspace_system(a, b)
        assert verts.shape[0] == 1
        np.testing.assert_allclose(verts[0], [1.0, 1.0], atol=1e-7)

    def test_segment_region(self):
        # x == 0.5, 0 <= y <= 1 in the plane.
        a = np.array([[1.0, 0], [-1.0, 0], [0, 1.0], [0, -1.0]])
        b = np.array([0.5, -0.5, 1.0, 0.0])
        verts = vertices_of_halfspace_system(a, b)
        got = {tuple(np.round(v, 7)) for v in verts}
        assert got == {(0.5, 0.0), (0.5, 1.0)}

    def test_1d(self):
        a = np.array([[1.0], [-1.0]])
        b = np.array([2.0, 1.0])  # -1 <= x <= 2
        verts = vertices_of_halfspace_system(a, b)
        assert sorted(v[0] for v in verts) == pytest.approx([-1.0, 2.0])

    def test_3d_cube(self):
        a = np.vstack([np.eye(3), -np.eye(3)])
        b = np.concatenate([np.ones(3), np.zeros(3)])
        verts = vertices_of_halfspace_system(a, b)
        assert verts.shape[0] == 8

    def test_flat_region_in_3d(self):
        # z == 0.25 slab intersected with the unit cube: a square.
        a = np.vstack([np.eye(3), -np.eye(3), [[0, 0, 1.0]], [[0, 0, -1.0]]])
        b = np.concatenate([np.ones(3), np.zeros(3), [0.25, -0.25]])
        verts = vertices_of_halfspace_system(a, b)
        assert verts.shape[0] == 4
        assert np.allclose(verts[:, 2], 0.25, atol=1e-7)

    def test_small_full_dim_region_far_from_origin(self):
        # Regression: a size-1e-4 triangle at (1e6, 1e6) has a Chebyshev
        # radius below the |center|-scaled degeneracy gate, and the
        # implicit-equality tolerance at that magnitude (~1e-2) used to
        # mark every constraint an equality, collapsing the round-trip
        # hull -> H-rep -> vertices to a single point.  A feasible-at-
        # zero-slack region whose constraints show no equality within the
        # float cancellation noise must be enumerated full-dimensionally.
        tri = np.array([[0.0, 0.0], [1e-4, 0.0], [0.0, 1e-4]]) + 1e6
        a, b = hrep_of_hull(tri)
        verts = vertices_of_halfspace_system(a, b)
        assert verts.shape[0] == 3
        dists = np.linalg.norm(verts[:, None, :] - tri[None, :, :], axis=2)
        assert float(dists.min(axis=1).max()) < 1e-8
        assert float(dists.min(axis=0).max()) < 1e-8

    def test_degenerate_region_far_from_origin_still_collapses(self):
        # The counterpart guard: genuinely flat regions at the same
        # coordinate magnitude must keep collapsing to their affine hull.
        seg = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]]) + 1e6
        a, b = hrep_of_hull(seg)
        verts = vertices_of_halfspace_system(a, b)
        assert verts.shape[0] == 2
        got = {tuple(np.round(v - 1e6, 5)) for v in verts}
        assert got == {(0.0, 0.0), (1.0, 1.0)}

    def test_nearly_parallel_conditioning(self):
        # Regression: nearly parallel constraint pairs must not displace
        # vertices (the scipy dual-space failure mode).
        a = np.array(
            [
                [0.0, -1.0],
                [1e-4, 1.0],
                [-1e-4, 1.0],
                [1.0, 0.0],
                [-1.0, 0.0],
            ]
        )
        b = np.array([0.0, 1.0, 1.0, 10.0, 10.0])
        verts = vertices_of_halfspace_system(a, b)
        # The apex region: y <= 1 -/+ 1e-4 x, y >= 0, |x| <= 10.
        for v in verts:
            assert np.all(a @ v <= b + 1e-9)
        ys = sorted(v[1] for v in verts)
        assert ys[-1] == pytest.approx(1.0, abs=1e-9)


class TestDedupeIdempotence:
    """Regressions for the rounded-key representative bug: returning the
    rounded grouping key instead of the original unit normal made a second
    dedupe pass re-normalize and shift offsets by ~1e-9, pinching equality
    pairs of lower-dimensional regions into infeasibility."""

    def test_returns_original_unit_normals(self):
        n = np.array([1.0, 1e-6])
        n = n / np.linalg.norm(n)
        a = np.array([n, [0.0, -1.0]])
        b = np.array([0.5, 0.25])
        da, db = dedupe_halfspaces(a, b)
        assert da.tobytes() == a.tobytes()  # not rounded, bit-identical
        assert db.tobytes() == b.tobytes()

    def test_second_pass_is_identity(self):
        rng = np.random.default_rng(11)
        a = rng.normal(size=(40, 3))
        b = rng.normal(size=40)
        a1, b1 = dedupe_halfspaces(a, b)
        a2, b2 = dedupe_halfspaces(a1, b1)
        assert a1.tobytes() == a2.tobytes()
        assert b1.tobytes() == b2.tobytes()

    def test_negative_zero_shares_bucket_with_positive_zero(self):
        a = np.array([[0.0, -1.0], [-0.0, -1.0]])
        b = np.array([0.5, 0.25])
        da, db = dedupe_halfspaces(a, b)
        assert da.shape[0] == 1
        assert db[0] == 0.25  # tightest offset of the merged bucket

    def test_equality_pair_of_thin_region_stays_feasible(self):
        # A segment represented as an equality pair plus side constraints:
        # deduping twice must not perturb the pair into infeasibility.
        n = np.array([1e-6, 1.0])
        n = n / np.linalg.norm(n)
        a = np.array([n, -n, [1.0, 0.0], [-1.0, 0.0]])
        b = np.array([2.5e-6, -2.5e-6, 1.0, 1.0])
        for _ in range(3):
            a, b = dedupe_halfspaces(a, b)
        feasible_point(a, b)  # raises InfeasibleRegionError on regression
