"""Unit tests for the exact 2-d polygon clipping path."""

import numpy as np
import pytest

from repro.geometry.clipping import (
    clip_polygon_by_halfspace,
    halfspace_intersection_2d,
)


SQUARE = np.array([[0.0, 0.0], [4.0, 0.0], [4.0, 4.0], [0.0, 4.0]])


class TestClipByHalfspace:
    def test_no_clip_when_fully_inside(self):
        out = clip_polygon_by_halfspace(SQUARE, np.array([1.0, 0.0]), 10.0)
        assert out.shape[0] == 4

    def test_full_clip_when_fully_outside(self):
        out = clip_polygon_by_halfspace(SQUARE, np.array([1.0, 0.0]), -1.0)
        assert out.shape[0] == 0

    def test_half_clip(self):
        out = clip_polygon_by_halfspace(SQUARE, np.array([1.0, 0.0]), 2.0)
        xs = out[:, 0]
        assert xs.max() == pytest.approx(2.0)
        assert out.shape[0] == 4

    def test_corner_clip(self):
        out = clip_polygon_by_halfspace(SQUARE, np.array([1.0, 1.0]), 1.0)
        # Cuts off everything except the corner triangle at the origin.
        assert out.shape[0] == 3
        area2 = 0.0
        for i in range(3):
            x1, y1 = out[i]
            x2, y2 = out[(i + 1) % 3]
            area2 += x1 * y2 - x2 * y1
        assert area2 / 2 == pytest.approx(0.5)

    def test_empty_input(self):
        out = clip_polygon_by_halfspace(np.zeros((0, 2)), np.array([1.0, 0.0]), 1.0)
        assert out.shape[0] == 0


class TestHalfspaceIntersection2d:
    def test_square(self):
        a = np.array([[1.0, 0], [-1.0, 0], [0, 1.0], [0, -1.0]])
        b = np.array([1.0, 0.0, 1.0, 0.0])
        verts = halfspace_intersection_2d(a, b)
        got = {tuple(np.round(v, 9)) for v in verts}
        assert got == {(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)}

    def test_triangle(self):
        a = np.array([[-1.0, 0.0], [0.0, -1.0], [1.0, 1.0]])
        b = np.array([0.0, 0.0, 1.0])
        verts = halfspace_intersection_2d(a, b)
        got = {tuple(np.round(v, 9)) for v in verts}
        assert got == {(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)}

    def test_small_region_far_from_origin_survives(self):
        # A size-1e-4 triangle at (1e6, 1e6): the per-halfspace tolerance
        # eps ~ ABS_TOL * |offset| is ~1e-3 here — larger than the whole
        # region — so a single clipping pass collapses the ring under the
        # duplicate prune.  The second pass re-clips in centered
        # coordinates, where the offsets (and hence eps) are at the
        # region's own scale, and must recover all three vertices.
        lo, size = 1e6, 1e-4
        r = np.sqrt(0.5)
        a = np.array([[-1.0, 0.0], [0.0, -1.0], [r, r]])
        b = np.array([-lo, -lo, r * (2 * lo + size)])
        verts = halfspace_intersection_2d(a, b)
        assert verts.shape[0] == 3
        expected = np.array([[lo, lo], [lo + size, lo], [lo, lo + size]])
        dists = np.linalg.norm(verts[:, None, :] - expected[None, :, :], axis=2)
        assert float(dists.min(axis=1).max()) < 1e-8
        assert float(dists.min(axis=0).max()) < 1e-8

    def test_empty(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([0.0, -1.0, 1.0, 0.0])
        verts = halfspace_intersection_2d(a, b)
        assert verts.shape[0] == 0

    def test_unbounded_raises(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([1.0])
        with pytest.raises(ValueError):
            halfspace_intersection_2d(a, b)

    def test_order_insensitive(self):
        rng = np.random.default_rng(0)
        a = np.array(
            [[1.0, 0], [-1.0, 0], [0, 1.0], [0, -1.0], [1.0, 1.0], [-1.0, 1.0]]
        )
        b = np.array([2.0, 2.0, 2.0, 2.0, 3.0, 3.0])
        base = halfspace_intersection_2d(a, b)
        base_set = {tuple(np.round(v, 8)) for v in base}
        for _ in range(5):
            perm = rng.permutation(len(b))
            verts = halfspace_intersection_2d(a[perm], b[perm])
            assert {tuple(np.round(v, 8)) for v in verts} == base_set

    def test_nearly_parallel_exact(self):
        # Two constraints differing by angle 1e-6 intersect far away but
        # the clipped region near the origin must keep full precision.
        theta = 1e-6
        a = np.array(
            [
                [0.0, 1.0],
                [np.sin(theta), np.cos(theta)],
                [-1.0, 0.0],
                [1.0, 0.0],
                [0.0, -1.0],
            ]
        )
        b = np.array([1.0, 1.0, 1.0, 1.0, 0.0])
        verts = halfspace_intersection_2d(a, b)
        for v in verts:
            assert np.all(a @ v <= b + 1e-9)
        ys = [v[1] for v in verts]
        assert max(ys) <= 1.0 + 1e-9
        assert max(ys) >= 1.0 - 1e-5  # the top edge is essentially y=1


class TestTwoPassRefinement:
    def test_sliver_vertex_precision(self):
        # Regression: a sliver bounded by two constraints meeting at angle
        # ~1e-6 rad.  Single-pass clipping computes crossings on the
        # synthetic ~1e6-scale box, leaving ~1e-10 absolute offset error
        # that the tiny angle amplifies to ~1e-4 in the vertex position.
        # The second clipping pass from a local box must kill this.
        slope = 1.0 / 900000.0
        nh = np.array([slope, 1.0])
        nh = nh / np.linalg.norm(nh)
        # Region: y >= 2.5e-6, x >= 2.25, slope*x + y <= offset; the tip
        # sits exactly at x = 4.5.
        off = float(nh @ np.array([4.5, 2.5e-6]))
        a = np.array([[0.0, -1.0], [-1.0, 0.0], nh])
        b = np.array([-2.5e-6, -2.25, off])
        verts = halfspace_intersection_2d(a, b)
        assert verts.shape[0] == 3
        tip_x = float(verts[:, 0].max())
        assert abs(tip_x - 4.5) < 1e-7
        assert np.all(np.abs(verts[:, 1][verts[:, 1] < 3e-6] - 2.5e-6) < 1e-12)
