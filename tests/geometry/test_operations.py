"""Unit tests for the general polytope-operations API."""

import numpy as np
import pytest

from repro.geometry.errors import DimensionMismatchError, EmptyPolytopeError
from repro.geometry.operations import (
    box,
    cross_polytope,
    dilate,
    interpolate,
    intersect_polytopes,
    minkowski_sum,
    regular_polygon,
)
from repro.geometry.polytope import ConvexPolytope


class TestIntersect:
    def test_overlapping_squares(self):
        a = box([0, 0], [2, 2])
        b = box([1, 1], [3, 3])
        out = intersect_polytopes([a, b])
        assert out.approx_equal(box([1, 1], [2, 2]))

    def test_disjoint(self):
        a = box([0, 0], [1, 1])
        b = box([5, 5], [6, 6])
        assert intersect_polytopes([a, b]).is_empty

    def test_touching_gives_degenerate(self):
        a = box([0, 0], [1, 1])
        b = box([1, 0], [2, 1])
        out = intersect_polytopes([a, b])
        assert not out.is_empty
        assert out.affine_dim <= 1  # shared edge

    def test_three_way(self):
        polys = [
            box([0, 0], [3, 3]),
            box([1, -1], [4, 4]),
            box([-1, 1], [2, 2]),
        ]
        out = intersect_polytopes(polys)
        assert out.approx_equal(box([1, 1], [2, 2]))

    def test_empty_operand_short_circuit(self):
        a = box([0, 0], [1, 1])
        out = intersect_polytopes([a, ConvexPolytope.empty(2)])
        assert out.is_empty

    def test_single_operand(self):
        a = box([0, 0], [1, 1])
        assert intersect_polytopes([a]) is a

    def test_requires_operands(self):
        with pytest.raises(ValueError):
            intersect_polytopes([])

    def test_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            intersect_polytopes([box([0, 0], [1, 1]), ConvexPolytope.from_interval(0, 1)])


class TestMinkowski:
    def test_box_sum(self):
        a = box([0, 0], [1, 1])
        b = box([0, 0], [2, 1])
        out = minkowski_sum(a, b)
        assert out.approx_equal(box([0, 0], [3, 2]))

    def test_sum_with_point_translates(self):
        a = regular_polygon(5)
        p = ConvexPolytope.singleton([3.0, -1.0])
        out = minkowski_sum(a, p)
        assert out.approx_equal(a.translate([3.0, -1.0]))

    def test_relation_to_l(self):
        from repro.geometry.combination import linear_combination
        from repro.geometry.operations import dilate

        a = regular_polygon(4)
        b = regular_polygon(3, radius=0.5, center=(1, 1))
        via_l = dilate(linear_combination([a, b], [0.5, 0.5]), 2.0)
        direct = minkowski_sum(a, b)
        assert via_l.approx_equal(direct, tol=1e-6)

    def test_empty_raises(self):
        with pytest.raises(EmptyPolytopeError):
            minkowski_sum(box([0, 0], [1, 1]), ConvexPolytope.empty(2))


class TestDilateInterpolate:
    def test_dilate_volume(self):
        a = box([0, 0], [1, 1])
        assert dilate(a, 3.0).volume() == pytest.approx(9.0)

    def test_dilate_zero_is_origin(self):
        out = dilate(regular_polygon(6), 0.0)
        assert out.is_point
        np.testing.assert_allclose(out.vertices[0], [0.0, 0.0])

    def test_interpolate_endpoints(self):
        a = box([0, 0], [1, 1])
        b = box([4, 4], [6, 6])
        assert interpolate(a, b, 0.0).approx_equal(a)
        assert interpolate(a, b, 1.0).approx_equal(b)

    def test_interpolate_midpoint(self):
        a = ConvexPolytope.singleton([0.0, 0.0])
        b = ConvexPolytope.singleton([2.0, 0.0])
        mid = interpolate(a, b, 0.5)
        np.testing.assert_allclose(mid.vertices[0], [1.0, 0.0])

    def test_interpolate_range_check(self):
        a = box([0, 0], [1, 1])
        with pytest.raises(ValueError):
            interpolate(a, a, 1.5)


class TestConstructors:
    def test_regular_polygon(self):
        hexagon = regular_polygon(6, radius=2.0)
        assert hexagon.num_vertices == 6
        assert hexagon.contains_point([0.0, 0.0])
        with pytest.raises(ValueError):
            regular_polygon(2)

    def test_cross_polytope(self):
        cp = cross_polytope(3)
        assert cp.num_vertices == 6
        assert cp.contains_point([0.3, 0.3, 0.3])
        assert not cp.contains_point([0.9, 0.9, 0.0])

    def test_box_validation(self):
        with pytest.raises(ValueError):
            box([1, 1], [0, 0])
        with pytest.raises(DimensionMismatchError):
            box([0, 0], [1, 1, 1])

    def test_box_volume(self):
        b = box([-1, -1, -1], [1, 1, 1])
        assert b.volume() == pytest.approx(8.0)
