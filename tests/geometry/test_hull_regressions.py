"""Regression tests for numerically subtle hull behaviours.

Each test pins a bug found during development so it cannot return:

* the *sagitta* pruning bug — pruning near-collinear vertices by cross
  product (area) instead of perpendicular distance eroded polytope
  boundaries by up to ~3e-5 after iterated Minkowski combinations,
  breaking Lemma 6 containment at the default invariant tolerance;
* the premature FISTA stop — projections of interior points reported
  distances ~1e-5 > 0, flipping membership tests near boundaries.
"""

import numpy as np
import pytest

from repro.geometry.combination import equal_weight_combination
from repro.geometry.hull import hull_vertices_2d
from repro.geometry.polytope import ConvexPolytope
from repro.geometry.projection import distance_to_hull


class TestSagittaPruning:
    def test_short_chord_vertex_survives(self):
        # Three nearly-collinear points where the *cross product* is tiny
        # (below an area threshold) but the sagitta is large relative to
        # membership tolerances: the middle vertex must be kept.
        base = 1e-4
        sag = 3e-5
        pts = np.array(
            [[0.0, 0.0], [base / 2, sag], [base, 0.0], [base / 2, -1.0]]
        )
        ring = hull_vertices_2d(pts)
        # The apex (base/2, sag) is a true extreme point.
        assert any(
            np.allclose(v, [base / 2, sag], atol=1e-12) for v in ring
        ), ring

    def test_truly_collinear_still_pruned(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [1.0, 0.0], [0.5, -1.0]])
        ring = hull_vertices_2d(pts)
        assert ring.shape[0] == 3  # midpoint of the top edge dropped

    def test_iterated_combination_preserves_containment(self):
        """The end-to-end symptom: a common point must survive many rounds
        of equal-weight combination without drifting outside."""
        rng = np.random.default_rng(3)
        polys = [
            ConvexPolytope.from_points(rng.uniform(-1, 1, size=(6, 2)))
            for _ in range(4)
        ]
        from repro.geometry.operations import intersect_polytopes

        common = intersect_polytopes(polys)
        if common.is_empty:
            pytest.skip("random polytopes did not overlap for this seed")
        probe = common.centroid
        states = polys
        for _ in range(30):
            mixed = equal_weight_combination(states)
            states = [mixed] * 4
            # probe is a fixed point of averaging identical containers.
            assert mixed.contains_point(probe, tol=1e-7)


class TestProjectionExactness:
    def test_interior_points_have_zero_distance(self):
        rng = np.random.default_rng(8)
        verts = rng.normal(size=(8, 2)) * 2
        # Strict interior mixtures must project to themselves.
        for _ in range(20):
            lam = rng.dirichlet(np.ones(8))
            q = lam @ verts
            assert distance_to_hull(q, verts) < 1e-9

    def test_near_boundary_classification(self):
        verts = np.array([[0, 0], [1, 0], [0, 1]], dtype=float)
        inside = np.array([0.3, 0.3])
        outside = np.array([0.51, 0.51])  # just across x+y=1
        assert distance_to_hull(inside, verts) < 1e-10
        assert distance_to_hull(outside, verts) > 1e-3


class TestHrepCache:
    def test_hrep_roundtrip_membership(self):
        poly = ConvexPolytope.from_points([[0, 0], [2, 0], [0, 2]])
        a, b = poly.hrep()
        assert np.all(a @ np.array([0.5, 0.5]) <= b + 1e-9)
        assert np.any(a @ np.array([2.0, 2.0]) > b)

    def test_violation_sign_convention(self):
        poly = ConvexPolytope.from_points([[0, 0], [2, 0], [0, 2]])
        assert poly.violation([0.5, 0.5]) < 0
        assert poly.violation([2.0, 2.0]) > 0
        assert abs(poly.violation([1.0, 1.0])) < 1e-9  # on the hypotenuse

    def test_hrep_returns_copies(self):
        poly = ConvexPolytope.from_points([[0, 0], [1, 0], [0, 1]])
        a, b = poly.hrep()
        a[0, 0] = 99.0
        a2, _ = poly.hrep()
        assert a2[0, 0] != 99.0

    def test_degenerate_hrep(self):
        seg = ConvexPolytope.from_points([[0, 0], [1, 1]])
        assert seg.violation([0.5, 0.5]) <= 1e-9
        assert seg.violation([0.5, 0.6]) > 1e-3


class TestCollinearRunEndpoints:
    """Regression: hypothesis found a point set with a denormal x-extent
    (~1e-101) where the chain prune dropped a geometric *endpoint* of a
    near-vertical collinear run.  The lexsort tie-break orders equal-x
    points by y, which need not match their order along the run, so the
    sort-middle point can be an exact-arithmetic extreme point.  The prune
    must only drop points whose projection lies strictly inside the chord."""

    def test_denormal_x_extent_keeps_extreme_point(self):
        pts = np.array([[-3.5e-101, 0.5], [0.0, -0.5], [0.0, 0.0]])
        ring = hull_vertices_2d(pts)
        # (0, -0.5) is extreme: it alone attains the support in -y.
        assert any(np.allclose(v, [0.0, -0.5], atol=0.0) for v in ring), ring
        # Support-function linearity at the failure direction of the
        # original hypothesis counterexample.
        u = np.array([0.0, -1.0])
        assert float((ring @ u).max()) == pytest.approx(0.5, abs=1e-12)

    def test_near_vertical_run_keeps_ends_without_duplicates(self):
        # Same shape at a friendlier scale: x-noise far below eps, three
        # points within the collinearity band plus one far vertex.  All
        # four are extreme in exact arithmetic.  An earlier draft of the
        # prune kept every band point projecting outside the chord, which
        # let the bottom vertex survive *both* chains and appear twice.
        pts = np.array(
            [[1e-12, 2.0], [0.0, 0.0], [-1e-12, 1.0], [5.0, 1.0]]
        )
        ring = hull_vertices_2d(pts)
        ys = sorted(round(float(v[1]), 9) for v in ring)
        assert 0.0 in ys and 2.0 in ys  # both run endpoints survive
        # Minimal representation: no vertex may repeat in the ring.
        as_tuples = [tuple(v) for v in ring]
        assert len(as_tuples) == len(set(as_tuples)), ring
