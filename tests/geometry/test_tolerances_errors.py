"""Tests for the tolerance policy and error hierarchy."""

import pytest

from repro.geometry.errors import (
    DegenerateInputError,
    DimensionMismatchError,
    EmptyPolytopeError,
    GeometryError,
    HullComputationError,
    InfeasibleRegionError,
    SolverError,
)
from repro.geometry.tolerances import DEFAULT_TOLERANCES, Tolerances


class TestTolerances:
    def test_defaults_are_ordered_sanely(self):
        t = DEFAULT_TOLERANCES
        # Membership tolerance must absorb the compounding of abs-level
        # noise through multi-step pipelines.
        assert t.membership_tol > t.abs_tol
        assert t.rank_tol > t.abs_tol

    def test_scaled(self):
        t = DEFAULT_TOLERANCES.scaled(10.0)
        assert t.abs_tol == pytest.approx(DEFAULT_TOLERANCES.abs_tol * 10)
        assert t.membership_tol == pytest.approx(
            DEFAULT_TOLERANCES.membership_tol * 10
        )

    def test_scaled_validates(self):
        with pytest.raises(ValueError):
            DEFAULT_TOLERANCES.scaled(0.0)
        with pytest.raises(ValueError):
            DEFAULT_TOLERANCES.scaled(-1.0)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            DEFAULT_TOLERANCES.abs_tol = 1.0  # frozen dataclass

    def test_custom_bundle(self):
        t = Tolerances(abs_tol=1e-6)
        assert t.abs_tol == 1e-6
        # Other fields keep defaults.
        assert t.membership_tol == DEFAULT_TOLERANCES.membership_tol


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            DimensionMismatchError,
            EmptyPolytopeError,
            DegenerateInputError,
            HullComputationError,
            InfeasibleRegionError,
            SolverError,
        ],
    )
    def test_all_derive_from_geometry_error(self, exc):
        assert issubclass(exc, GeometryError)
        with pytest.raises(GeometryError):
            raise exc("boom")

    def test_catching_family(self):
        # One except clause suffices for the consensus layer.
        try:
            raise InfeasibleRegionError("empty")
        except GeometryError as err:
            assert "empty" in str(err)
