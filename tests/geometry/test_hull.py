"""Unit tests for convex hull computation, including degenerate inputs."""

import numpy as np
import pytest

from repro.geometry.hull import (
    hull_vertices,
    hull_vertices_1d,
    hull_vertices_2d,
    is_extreme_point_set,
)


class TestHull1d:
    def test_basic(self):
        out = hull_vertices_1d(np.array([[3.0], [1.0], [2.0]]))
        assert sorted(out.ravel()) == [1.0, 3.0]

    def test_single_value(self):
        out = hull_vertices_1d(np.array([[2.0], [2.0]]))
        assert out.shape == (1, 1)

    def test_empty(self):
        out = hull_vertices_1d(np.zeros((0, 1)))
        assert out.shape[0] == 0


class TestHull2d:
    def test_square_with_interior(self):
        pts = np.array([[0, 0], [1, 0], [0, 1], [1, 1], [0.5, 0.5]], dtype=float)
        out = hull_vertices_2d(pts)
        assert out.shape == (4, 2)
        assert (0.5, 0.5) not in {tuple(v) for v in out}

    def test_ccw_orientation(self):
        pts = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], dtype=float)
        ring = hull_vertices_2d(pts)
        area2 = 0.0
        m = ring.shape[0]
        for i in range(m):
            x1, y1 = ring[i]
            x2, y2 = ring[(i + 1) % m]
            area2 += x1 * y2 - x2 * y1
        assert area2 > 0  # CCW rings have positive signed area

    def test_collinear_returns_segment(self):
        pts = np.array([[0, 0], [1, 1], [2, 2], [3, 3]], dtype=float)
        out = hull_vertices_2d(pts)
        assert out.shape[0] == 2

    def test_boundary_collinear_points_dropped(self):
        pts = np.array([[0, 0], [1, 0], [2, 0], [2, 2], [0, 2]], dtype=float)
        out = hull_vertices_2d(pts)
        assert out.shape[0] == 4  # (1,0) is on the bottom edge

    def test_duplicates(self):
        pts = np.array([[0, 0], [0, 0], [1, 0], [1, 0], [0, 1]], dtype=float)
        out = hull_vertices_2d(pts)
        assert out.shape[0] == 3


class TestHullGeneral:
    def test_matches_2d_fast_path(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(30, 2))
        fast = {tuple(np.round(v, 9)) for v in hull_vertices_2d(pts)}
        general = {tuple(np.round(v, 9)) for v in hull_vertices(pts)}
        assert fast == general

    def test_3d_cube(self):
        corners = np.array(
            [[x, y, z] for x in (0, 1) for y in (0, 1) for z in (0, 1)],
            dtype=float,
        )
        inner = np.vstack([corners, [[0.5, 0.5, 0.5]]])
        out = hull_vertices(inner)
        assert out.shape == (8, 3)

    def test_collinear_in_3d(self):
        pts = np.outer(np.linspace(-1, 1, 7), [1.0, 2.0, -1.0])
        out = hull_vertices(pts)
        assert out.shape[0] == 2
        norms = np.linalg.norm(out, axis=1)
        assert norms.max() == pytest.approx(np.linalg.norm([1.0, 2.0, -1.0]))

    def test_planar_in_3d(self):
        rng = np.random.default_rng(1)
        basis = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 1.0]])
        pts = rng.uniform(-1, 1, size=(20, 2)) @ basis
        out = hull_vertices(pts)
        # All hull vertices must be original points of the planar set.
        for v in out:
            assert np.min(np.linalg.norm(pts - v, axis=1)) < 1e-9

    def test_single_point(self):
        out = hull_vertices([[1.0, 2.0, 3.0]])
        assert out.shape == (1, 3)

    def test_all_coincident(self):
        pts = np.tile([2.0, 3.0], (5, 1))
        out = hull_vertices(pts)
        assert out.shape == (1, 2)

    def test_empty(self):
        out = hull_vertices(np.zeros((0, 2)))
        assert out.shape[0] == 0

    def test_simplex_all_extreme(self):
        pts = np.vstack([np.zeros(4), np.eye(4)])
        out = hull_vertices(pts)
        assert out.shape == (5, 4)

    def test_minimality_4d(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(30, 4))
        out = hull_vertices(pts)
        assert is_extreme_point_set(out)

    def test_interior_points_removed_1d(self):
        out = hull_vertices(np.array([[0.0], [0.25], [0.5], [1.0]]))
        assert out.shape == (2, 1)


class TestIsExtremePointSet:
    def test_detects_interior_point(self):
        pts = np.array([[0, 0], [1, 0], [0, 1], [0.2, 0.2]], dtype=float)
        assert not is_extreme_point_set(pts)

    def test_accepts_extreme_set(self):
        pts = np.array([[0, 0], [1, 0], [0, 1]], dtype=float)
        assert is_extreme_point_set(pts)

    def test_single_point(self):
        assert is_extreme_point_set(np.array([[1.0, 1.0]]))
