"""Tests for width / support-function metrics."""

import numpy as np
import pytest

from repro.geometry.errors import DimensionMismatchError, EmptyPolytopeError
from repro.geometry.operations import box, regular_polygon
from repro.geometry.polytope import ConvexPolytope
from repro.geometry.width import (
    aspect_ratio,
    directional_width,
    max_width,
    mean_width_2d,
    min_width,
    perimeter_2d,
)


class TestDirectionalWidth:
    def test_axis_aligned_box(self):
        b = box([0, 0], [3, 1])
        assert directional_width(b, [1, 0]) == pytest.approx(3.0)
        assert directional_width(b, [0, 1]) == pytest.approx(1.0)

    def test_direction_normalised(self):
        b = box([0, 0], [3, 1])
        assert directional_width(b, [10, 0]) == pytest.approx(3.0)

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            directional_width(box([0, 0], [1, 1]), [0, 0])


class TestMinMaxWidth:
    def test_box(self):
        b = box([0, 0], [3, 1])
        assert min_width(b) == pytest.approx(1.0)
        assert max_width(b) == pytest.approx(np.sqrt(10.0))

    def test_equilateral_triangle(self):
        tri = regular_polygon(3, radius=1.0)
        # Height of an equilateral triangle inscribed in unit circle: 1.5.
        assert min_width(tri) == pytest.approx(1.5, rel=1e-9)

    def test_point(self):
        assert min_width(ConvexPolytope.singleton([1.0, 2.0])) == 0.0

    def test_interval(self):
        iv = ConvexPolytope.from_interval(-2.0, 3.0)
        assert min_width(iv) == pytest.approx(5.0)

    def test_segment_in_plane(self):
        seg = ConvexPolytope.from_points([[0, 0], [2, 0]])
        assert min_width(seg) == 0.0
        assert max_width(seg) == pytest.approx(2.0)

    def test_3d_cube(self):
        cube = ConvexPolytope.unit_cube(3)
        w = min_width(cube, num_directions=4000, seed=1)
        # sampled: upper bound of the true min width 1, within ~5%.
        assert 0.99 <= w <= 1.1

    def test_empty_raises(self):
        with pytest.raises(EmptyPolytopeError):
            min_width(ConvexPolytope.empty(2))


class TestPerimeter:
    def test_square(self):
        assert perimeter_2d(box([0, 0], [2, 2])) == pytest.approx(8.0)

    def test_segment_double_length(self):
        seg = ConvexPolytope.from_points([[0, 0], [3, 4]])
        assert perimeter_2d(seg) == pytest.approx(10.0)

    def test_point(self):
        assert perimeter_2d(ConvexPolytope.singleton([0.0, 0.0])) == 0.0

    def test_dim_check(self):
        with pytest.raises(DimensionMismatchError):
            perimeter_2d(ConvexPolytope.from_interval(0, 1))

    def test_mean_width_of_disc_like(self):
        # For a regular 64-gon ~ circle of radius r: mean width ~ 2r.
        poly = regular_polygon(64, radius=1.0)
        assert mean_width_2d(poly) == pytest.approx(2.0, rel=1e-2)


class TestAspectRatio:
    def test_square_is_balanced(self):
        assert aspect_ratio(box([0, 0], [1, 1])) == pytest.approx(np.sqrt(2.0))

    def test_sliver_is_elongated(self):
        sliver = box([0, 0], [10, 0.1])
        assert aspect_ratio(sliver) > 50

    def test_flat_is_infinite(self):
        seg = ConvexPolytope.from_points([[0, 0], [1, 0]])
        assert aspect_ratio(seg) == float("inf")

    def test_point_is_one(self):
        assert aspect_ratio(ConvexPolytope.singleton([0.0, 0.0])) == 1.0
