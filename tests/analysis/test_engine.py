"""Tests for the process-pool experiment engine."""

import json
from pathlib import Path

import pytest

from repro.analysis.engine import (
    MANIFEST_FILENAME,
    RESULTS_FILENAME,
    TaskResult,
    TaskSpec,
    load_results,
    resolve_runner,
    run_grid,
    task_key,
)


# ---------------------------------------------------------------------------
# Module-level cell functions (must be picklable for pool workers).


def square_cell(*, x, out_dir=None):
    """Pure cell; optionally leaves one marker file per execution."""
    if out_dir is not None:
        (Path(out_dir) / f"ran-{x}").touch()
    return {"x": x, "square": x * x}


def failing_cell(*, x):
    if x == 2:
        raise ValueError(f"cell exploded at x={x}")
    return {"x": x}


def flaky_cell(*, x, marker_dir):
    """Fails on the first attempt, succeeds once its marker exists.

    The marker lives on disk so the state survives the process boundary
    between retry attempts and between engine invocations.
    """
    marker = Path(marker_dir) / f"seen-{x}"
    if not marker.exists():
        marker.touch()
        raise RuntimeError(f"transient failure at x={x}")
    return {"x": x, "recovered": True}


def grid(xs, fn=square_cell, **extra):
    return [
        TaskSpec(key=task_key(x=x), runner=fn, params={"x": x, **extra})
        for x in xs
    ]


# ---------------------------------------------------------------------------


class TestTaskKey:
    def test_order_independent(self):
        assert task_key(b=2, a=1) == task_key(a=1, b=2)

    def test_distinct_for_distinct_params(self):
        keys = {task_key(scenario="s", seed=i) for i in range(10)}
        assert len(keys) == 10

    def test_nested_values_canonical(self):
        assert task_key(kw={"n": 9, "f": 2}) == task_key(kw={"f": 2, "n": 9})

    def test_float_repr_roundtrip(self):
        assert "0.1" in task_key(eps=0.1)


class TestResolveRunner:
    def test_callable_passthrough(self):
        assert resolve_runner(square_cell) is square_cell

    def test_dotted_path(self):
        fn = resolve_runner("repro.analysis.sweeps:scenario_cell")
        assert callable(fn)

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError):
            resolve_runner("no-colon-here")


class TestSequential:
    def test_grid_order_and_rows(self):
        report = run_grid(grid([3, 1, 2]), workers=1)
        assert [r.row["x"] for r in report.results] == [3, 1, 2]
        assert report.rows() == [
            {"x": 3, "square": 9},
            {"x": 1, "square": 1},
            {"x": 2, "square": 4},
        ]
        assert report.executed == 3 and report.reused == 0

    def test_duplicate_keys_rejected(self):
        tasks = grid([1]) + grid([1])
        with pytest.raises(ValueError, match="duplicate"):
            run_grid(tasks)

    def test_failure_isolated_with_traceback(self):
        report = run_grid(grid([1, 2, 3], fn=failing_cell), workers=1)
        statuses = [r.status for r in report.results]
        assert statuses == ["ok", "error", "ok"]
        failed = report.results[1]
        assert "ValueError" in failed.error
        assert "cell exploded" in failed.traceback
        assert report.failed == 1
        assert len(report.rows()) == 2  # failed cell contributes no row

    def test_retry_recovers_flaky_cell(self, tmp_path):
        report = run_grid(
            grid([7], fn=flaky_cell, marker_dir=str(tmp_path)),
            workers=1,
            retries=1,
        )
        (result,) = report.results
        assert result.ok and result.row == {"x": 7, "recovered": True}
        assert result.attempts == 2

    def test_no_retry_records_failure(self, tmp_path):
        report = run_grid(
            grid([7], fn=flaky_cell, marker_dir=str(tmp_path)), workers=1
        )
        assert report.results[0].status == "error"
        assert report.results[0].attempts == 1


class TestParallel:
    def test_worker_count_invariance(self):
        xs = list(range(8))
        seq = run_grid(grid(xs), workers=1)
        par = run_grid(grid(xs), workers=2)
        assert json.dumps([r.row for r in seq.results], sort_keys=True) == (
            json.dumps([r.row for r in par.results], sort_keys=True)
        )
        assert [r.status for r in seq.results] == [
            r.status for r in par.results
        ]

    def test_parallel_failure_isolated(self):
        report = run_grid(grid([1, 2, 3, 4], fn=failing_cell), workers=2)
        by_x = {r.params["x"]: r for r in report.results}
        assert not by_x[2].ok and "ValueError" in by_x[2].error
        assert all(by_x[x].ok for x in (1, 3, 4))

    def test_parallel_counters_merged(self):
        # square_cell does no geometry, so merged counters must be all-zero
        # (the merge path itself is exercised either way).
        report = run_grid(grid(range(4)), workers=2)
        assert all(value == 0 for value in report.counters.values())


class TestCheckpointResume:
    def test_journal_written_per_cell(self, tmp_path):
        run_grid(grid([1, 2, 3]), workers=1, run_dir=tmp_path)
        lines = (tmp_path / RESULTS_FILENAME).read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            entry = json.loads(line)
            assert entry["status"] == "ok"
        manifest = json.loads((tmp_path / MANIFEST_FILENAME).read_text())
        assert manifest["cells"] == 3

    def test_resume_skips_completed_cells(self, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        run_dir = tmp_path / "run"
        run_grid(
            grid([1, 2], out_dir=str(marker_dir)), run_dir=run_dir
        )
        assert len(list(marker_dir.iterdir())) == 2
        # Resume a *larger* grid: only the two new cells may execute.
        report = run_grid(
            grid([1, 2, 3, 4], out_dir=str(marker_dir)),
            run_dir=run_dir,
            resume=True,
        )
        assert report.reused == 2 and report.executed == 2
        assert sorted(p.name for p in marker_dir.iterdir()) == [
            "ran-1",
            "ran-2",
            "ran-3",
            "ran-4",
        ]
        cached = [r.cached for r in report.results]
        assert cached == [True, True, False, False]
        # Rows are complete and grid-ordered despite the mixed provenance.
        assert [r.row["x"] for r in report.results] == [1, 2, 3, 4]

    def test_resume_reruns_failed_cells(self, tmp_path):
        run_dir = tmp_path / "run"
        first = run_grid(
            grid([1, 2, 3], fn=failing_cell), run_dir=run_dir
        )
        assert first.failed == 1
        # flaky-style recovery: swap in a runner that now succeeds.
        report = run_grid(grid([1, 2, 3]), run_dir=run_dir, resume=True)
        assert report.reused == 2 and report.executed == 1
        assert all(r.ok for r in report.results)

    def test_resume_rows_identical_to_fresh(self, tmp_path):
        xs = list(range(5))
        fresh = run_grid(grid(xs), workers=1)
        run_dir = tmp_path / "run"
        run_grid(grid(xs[:3]), run_dir=run_dir)
        resumed = run_grid(grid(xs), run_dir=run_dir, resume=True, workers=2)
        assert json.dumps([r.row for r in fresh.results], sort_keys=True) == (
            json.dumps([r.row for r in resumed.results], sort_keys=True)
        )

    def test_truncated_journal_line_tolerated(self, tmp_path):
        run_grid(grid([1, 2]), run_dir=tmp_path)
        path = tmp_path / RESULTS_FILENAME
        path.write_text(path.read_text() + '{"key": "x=3", "stat')  # killed mid-write
        loaded = load_results(tmp_path)
        assert set(loaded) == {task_key(x=1), task_key(x=2)}

    def test_last_journal_entry_wins(self, tmp_path):
        path = tmp_path / RESULTS_FILENAME
        older = TaskResult(key="k", status="error", error="boom")
        newer = TaskResult(key="k", status="ok", row={"v": 1})
        path.write_text(
            json.dumps(older.to_json_dict())
            + "\n"
            + json.dumps(newer.to_json_dict())
            + "\n"
        )
        loaded = load_results(tmp_path)
        assert loaded["k"].ok and loaded["k"].row == {"v": 1}
