"""Tests for quorum-composition statistics."""

import numpy as np
import pytest

from repro.analysis.quorum_stats import explain_contraction, quorum_report


class TestQuorumReport:
    def test_sizes_at_least_quorum(self, benign_2d_run):
        report = quorum_report(benign_2d_run.trace)
        quorum = benign_2d_run.config.quorum
        for round_stats in report.rounds:
            assert all(size >= quorum for size in round_stats.sizes.values())

    def test_overlap_bounds(self, crashy_2d_run):
        trace = crashy_2d_run.trace
        report = quorum_report(trace)
        # Two quorums of size >= n-f overlap in >= n-2f members.
        floor = trace.n - 2 * trace.f
        for round_stats in report.rounds:
            assert round_stats.min_pairwise_overlap >= floor
            assert round_stats.mean_pairwise_overlap >= round_stats.min_pairwise_overlap

    def test_lambda_below_paper_rate(self, benign_2d_run):
        """The quorum-implied contraction beats the uniform 1 - 1/n."""
        stats = explain_contraction(benign_2d_run.trace)
        assert stats["worst_lambda"] <= stats["paper_rate"] + 1e-12

    def test_inclusion_frequency_shape(self, benign_2d_run):
        trace = benign_2d_run.trace
        report = quorum_report(trace)
        assert report.inclusion_frequency.shape == (trace.n, trace.n)
        # Every live process includes itself in every quorum (line 8).
        for proc in trace.processes:
            if proc.round_senders:
                assert report.inclusion_frequency[proc.pid, proc.pid] == pytest.approx(1.0)

    def test_crashed_process_inclusion_drops(self, crashy_2d_run):
        trace = crashy_2d_run.trace
        report = quorum_report(trace)
        crashed = next(
            p.pid for p in trace.processes if p.crash_fired_round is not None
        )
        live = [p.pid for p in trace.processes if p.crash_fired_round is None]
        # The crashed process appears in strictly fewer quorums than a
        # live process does on average.
        crashed_col = report.inclusion_frequency[live, crashed].mean()
        live_col = report.inclusion_frequency[np.ix_(live, live)].mean()
        assert crashed_col < live_col
