"""Tests for the analysis metrics layer."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    convergence_series,
    cost_summary,
    output_size_report,
)


class TestConvergenceSeries:
    def test_within_envelope(self, starved_2d_run):
        series = convergence_series(starved_2d_run.trace)
        assert len(series.rounds) == starved_2d_run.config.t_end + 1
        for dis, env in zip(series.disagreement, series.envelope):
            assert dis <= env + 1e-9

    def test_final_below_eps(self, starved_2d_run):
        series = convergence_series(starved_2d_run.trace)
        assert series.disagreement[-1] < starved_2d_run.config.eps

    def test_rounds_to(self, starved_2d_run):
        series = convergence_series(starved_2d_run.trace)
        hit = series.rounds_to(starved_2d_run.config.eps)
        assert hit is not None
        assert hit <= starved_2d_run.config.t_end

    def test_empirical_rate_faster_than_bound(self, round0_crash_run):
        series = convergence_series(round0_crash_run.trace)
        rate = series.empirical_rate()
        gamma = 1.0 - 1.0 / round0_crash_run.trace.n
        if rate is not None:  # instant agreement yields None
            assert rate < gamma


class TestOutputSize:
    def test_ratios(self, starved_2d_run):
        report = output_size_report(starved_2d_run.trace)
        # Lemma 6: outputs contain I_Z, so each ratio vs I_Z is >= 1.
        assert report.min_ratio_vs_iz >= 1.0 - 1e-9
        # Outputs are inside the hull of correct inputs: ratio <= 1.
        assert report.mean_ratio_vs_correct_hull <= 1.0 + 1e-9
        assert report.iz_measure >= 0.0

    def test_diameters_present(self, benign_2d_run):
        report = output_size_report(benign_2d_run.trace)
        assert set(report.output_diameters) == set(
            benign_2d_run.fault_free_outputs
        )


class TestCostSummary:
    def test_counters(self, benign_2d_run):
        summary = cost_summary(benign_2d_run.trace)
        assert summary.messages_sent >= summary.messages_delivered
        assert summary.rounds == benign_2d_run.config.t_end
        assert summary.max_vertices_seen >= 3
