"""Tests for the seed-sweep driver."""

import pytest

from repro.analysis.sweeps import SweepSummary, sweep_scenario
from repro.workloads.scenarios import benign, view_split


class TestSweep:
    @pytest.fixture(scope="class")
    def summary(self):
        scenario = view_split()
        return sweep_scenario(lambda seed: scenario.run(seed=seed), range(4))

    def test_runs_all_seeds(self, summary):
        assert summary.num_runs == 4
        assert [r.seed for r in summary.rows] == [0, 1, 2, 3]

    def test_all_properties_hold(self, summary):
        assert summary.all_ok
        assert summary.failures == []

    def test_aggregates(self, summary):
        assert summary.worst_round0_disagreement >= 0
        assert summary.worst_final_disagreement < view_split().eps
        assert summary.mean_messages > 0

    def test_table_rows_shape(self, summary):
        rows = summary.table_rows()
        assert len(rows) == 5  # 4 seeds + aggregate
        assert len(rows[0]) == len(SweepSummary.TABLE_COLUMNS)
        assert rows[-1][0] == "ALL"

    def test_seed_variation_changes_executions(self):
        # With a seeded scheduler, different seeds must produce at least
        # one differing round-0 disagreement across a small sweep.
        scenario = view_split()
        summary = sweep_scenario(
            lambda seed: scenario.run(seed=seed), range(4)
        )
        values = {round(r.disagreement_round0, 12) for r in summary.rows}
        assert len(values) >= 2

    def test_custom_check(self):
        scenario = benign(n=5, d=1, eps=0.4)

        class AlwaysOk:
            ok = True

        summary = sweep_scenario(
            lambda seed: scenario.run(seed=seed),
            range(2),
            check=lambda result: AlwaysOk(),
        )
        assert summary.all_ok

    def test_empty_sweep(self):
        summary = sweep_scenario(lambda seed: None, [])
        assert summary.num_runs == 0
        assert summary.all_ok  # vacuous
