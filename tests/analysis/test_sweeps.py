"""Tests for the seed-sweep driver."""

import json
import pickle

import pytest

from repro.analysis.sweeps import (
    SweepSummary,
    run_sweep,
    scenario_cell,
    scenario_grid,
    sweep_scenario,
)
from repro.workloads.scenarios import ScenarioSpec, benign, view_split


class TestSweep:
    @pytest.fixture(scope="class")
    def summary(self):
        scenario = view_split()
        return sweep_scenario(lambda seed: scenario.run(seed=seed), range(4))

    def test_runs_all_seeds(self, summary):
        assert summary.num_runs == 4
        assert [r.seed for r in summary.rows] == [0, 1, 2, 3]

    def test_all_properties_hold(self, summary):
        assert summary.all_ok
        assert summary.failures == []

    def test_aggregates(self, summary):
        assert summary.worst_round0_disagreement >= 0
        assert summary.worst_final_disagreement < view_split().eps
        assert summary.mean_messages > 0

    def test_table_rows_shape(self, summary):
        rows = summary.table_rows()
        assert len(rows) == 5  # 4 seeds + aggregate
        assert len(rows[0]) == len(SweepSummary.TABLE_COLUMNS)
        assert rows[-1][0] == "ALL"

    def test_seed_variation_changes_executions(self):
        # With a seeded scheduler, different seeds must produce at least
        # one differing round-0 disagreement across a small sweep.
        scenario = view_split()
        summary = sweep_scenario(
            lambda seed: scenario.run(seed=seed), range(4)
        )
        values = {round(r.disagreement_round0, 12) for r in summary.rows}
        assert len(values) >= 2

    def test_custom_check(self):
        scenario = benign(n=5, d=1, eps=0.4)

        class AlwaysOk:
            ok = True

        summary = sweep_scenario(
            lambda seed: scenario.run(seed=seed),
            range(2),
            check=lambda result: AlwaysOk(),
        )
        assert summary.all_ok

    def test_empty_sweep(self):
        summary = sweep_scenario(lambda seed: None, [])
        assert summary.num_runs == 0
        assert summary.all_ok  # vacuous


class TestStatusSeparation:
    """Property violations and execution errors are distinct outcomes."""

    def test_raising_run_becomes_error_row(self):
        def run(seed):
            if seed == 1:
                raise RuntimeError("scheduler wedged")
            return view_split().run(seed=seed)

        summary = sweep_scenario(run, range(3))
        assert [r.status for r in summary.rows] == ["ok", "error", "ok"]
        assert summary.errors == [1]
        assert summary.violations == []
        assert summary.failures == [1]
        assert not summary.all_ok
        assert "RuntimeError" in summary.rows[1].error

    def test_violation_row_distinct_from_error(self):
        class NotOk:
            ok = False

        scenario = view_split()
        summary = sweep_scenario(
            lambda seed: scenario.run(seed=seed),
            range(2),
            check=lambda result: NotOk(),
        )
        assert summary.violations == [0, 1]
        assert summary.errors == []
        assert [r.status for r in summary.rows] == ["violation", "violation"]
        assert not any(r.properties_ok for r in summary.rows)

    def test_error_rows_excluded_from_mean_messages(self):
        def run(seed):
            if seed == 0:
                raise RuntimeError("boom")
            return view_split().run(seed=seed)

        summary = sweep_scenario(run, range(2))
        ok_row = summary.rows[1]
        assert summary.mean_messages == pytest.approx(float(ok_row.messages))

    def test_isolate_errors_false_reraises(self):
        def run(seed):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            sweep_scenario(run, range(1), isolate_errors=False)

    def test_table_has_status_column(self):
        def run(seed):
            raise RuntimeError("boom")

        summary = sweep_scenario(run, range(1))
        rows = summary.table_rows()
        status_idx = SweepSummary.TABLE_COLUMNS.index("status")
        assert rows[0][status_idx] == "error"
        assert rows[-1][0] == "FAIL"
        assert "1 err" in rows[-1][status_idx]


class TestScenarioSpec:
    def test_build_equivalent_to_factory(self):
        spec = ScenarioSpec("benign", {"n": 5, "d": 1, "eps": 0.4})
        built = spec.build()
        direct = benign(n=5, d=1, eps=0.4)
        assert built.n == direct.n and built.eps == direct.eps

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            ScenarioSpec("nope").build()

    def test_picklable(self):
        spec = ScenarioSpec("view-split", {"eps": 0.1})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestEngineBackedSweep:
    def test_scenario_cell_row_is_json_safe(self):
        row = scenario_cell(scenario="view-split", seed=1)
        assert row == json.loads(json.dumps(row))
        assert row["status"] == "ok" and row["seed"] == 1

    def test_grid_keys_deterministic(self):
        a = scenario_grid("view-split", range(3))
        b = scenario_grid("view-split", range(3))
        assert [t.key for t in a] == [t.key for t in b]
        assert len({t.key for t in a}) == 3

    def test_run_sweep_matches_in_process_driver(self):
        scenario = view_split()
        in_process = sweep_scenario(
            lambda seed: scenario.run(seed=seed), range(3)
        )
        summary, engine = run_sweep("view-split", range(3), workers=1)
        assert [vars(r) for r in summary.rows] == [
            vars(r) for r in in_process.rows
        ]
        assert engine.executed == 3 and engine.failed == 0

    def test_run_sweep_worker_count_invariant(self):
        seq, _ = run_sweep("view-split", range(3), workers=1)
        par, _ = run_sweep("view-split", range(3), workers=2)
        assert json.dumps(
            [vars(r) for r in seq.rows], sort_keys=True
        ) == json.dumps([vars(r) for r in par.rows], sort_keys=True)

    def test_run_sweep_resume_roundtrip(self, tmp_path):
        first, engine1 = run_sweep(
            "view-split", range(2), workers=1, run_dir=tmp_path
        )
        resumed, engine2 = run_sweep(
            "view-split", range(2), workers=1, run_dir=tmp_path, resume=True
        )
        assert engine2.executed == 0 and engine2.reused == 2
        assert [vars(r) for r in first.rows] == [vars(r) for r in resumed.rows]
