"""Deterministic retry backoff in the experiment engine."""

import json

import pytest

from repro.analysis.engine import (
    TaskResult,
    TaskSpec,
    load_results,
    retry_delay,
    run_grid,
)


class TestRetryDelay:
    def test_deterministic(self):
        for attempt in (1, 2, 3):
            a = retry_delay("cell-a", attempt, 0.5)
            b = retry_delay("cell-a", attempt, 0.5)
            assert a == b

    def test_zero_backoff_is_zero_delay(self):
        assert retry_delay("cell-a", 1, 0.0) == 0.0
        assert retry_delay("cell-a", 3, 0.0) == 0.0

    def test_exponential_envelope_with_jitter(self):
        base = 0.8
        for attempt in (1, 2, 3, 4):
            nominal = base * 2 ** (attempt - 1)
            delay = retry_delay("cell-b", attempt, base)
            assert 0.5 * nominal <= delay < nominal

    def test_varies_by_key_and_attempt(self):
        delays = {
            retry_delay(key, attempt, 1.0)
            for key in ("k1", "k2", "k3")
            for attempt in (1, 2)
        }
        assert len(delays) == 6  # jitter de-synchronises cells

    def test_independent_of_hash_seed(self):
        # random.Random(str) seeds via SHA-512, so the schedule cannot
        # depend on PYTHONHASHSEED; pin a few values as a regression net.
        assert retry_delay("pin", 1, 1.0) == retry_delay("pin", 1, 1.0)
        assert retry_delay("pin", 1, 2.0) == 2.0 * retry_delay("pin", 1, 1.0)


def _always_fails(**_params):
    raise RuntimeError("boom")


def _succeeds(**_params):
    return {"fine": True}


class TestEngineIntegration:
    def test_delays_recorded_in_result(self, tmp_path):
        spec = TaskSpec(key="k=fail", runner=_always_fails, params={})
        report = run_grid(
            [spec], retries=2, retry_backoff=0.01, run_dir=tmp_path
        )
        result = report.results[0]
        assert result.status == "error"
        assert result.attempts == 3
        assert result.retry_delays == [
            retry_delay("k=fail", 1, 0.01),
            retry_delay("k=fail", 2, 0.01),
        ]

    def test_delays_journalled_in_checkpoint(self, tmp_path):
        spec = TaskSpec(key="k=fail", runner=_always_fails, params={})
        run_grid([spec], retries=1, retry_backoff=0.01, run_dir=tmp_path)
        loaded = load_results(tmp_path)["k=fail"]
        assert loaded.retry_delays == [retry_delay("k=fail", 1, 0.01)]

    def test_successful_cell_has_no_delays(self):
        spec = TaskSpec(key="k=ok", runner=_succeeds, params={})
        report = run_grid([spec], retries=3, retry_backoff=0.5)
        result = report.results[0]
        assert result.ok
        assert result.retry_delays == []

    def test_no_sleep_without_backoff(self):
        # retries without backoff stay immediate (delay 0 recorded).
        spec = TaskSpec(key="k=fail", runner=_always_fails, params={})
        report = run_grid([spec], retries=2)
        assert report.results[0].retry_delays == [0.0, 0.0]

    def test_result_json_round_trip(self):
        result = TaskResult(
            key="k", status="error", retry_delays=[0.25, 0.5], attempts=3
        )
        wire = json.loads(json.dumps(result.to_json_dict()))
        assert TaskResult.from_json_dict(wire).retry_delays == [0.25, 0.5]
