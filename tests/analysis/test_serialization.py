"""Tests for JSON trace serialization round-trips."""

import numpy as np
import pytest

from repro.analysis.serialization import (
    dump_trace,
    load_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.core.invariants import check_all
from repro.core.matrix import verify_state_evolution


class TestRoundTrip:
    def test_dict_roundtrip_preserves_metadata(self, crashy_2d_run):
        trace = crashy_2d_run.trace
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.n == trace.n
        assert rebuilt.f == trace.f
        assert rebuilt.eps == trace.eps
        assert rebuilt.t_end == trace.t_end
        assert rebuilt.fault_plan.faulty == trace.fault_plan.faulty
        assert rebuilt.messages_sent == trace.messages_sent

    def test_roundtrip_preserves_states(self, crashy_2d_run):
        trace = crashy_2d_run.trace
        rebuilt = trace_from_dict(trace_to_dict(trace))
        for orig, new in zip(trace.processes, rebuilt.processes):
            assert orig.pid == new.pid
            np.testing.assert_allclose(orig.input_point, new.input_point)
            assert set(orig.states) == set(new.states)
            for t in orig.states:
                assert orig.states[t].approx_equal(new.states[t], tol=1e-9)
            assert orig.round_senders == new.round_senders
            assert orig.crash_fired_round == new.crash_fired_round

    def test_roundtrip_preserves_views(self, round0_crash_run):
        trace = round0_crash_run.trace
        rebuilt = trace_from_dict(trace_to_dict(trace))
        for orig, new in zip(trace.processes, rebuilt.processes):
            assert orig.r_view == new.r_view

    @pytest.mark.slow
    def test_invariants_hold_on_rebuilt_trace(self, benign_2d_run):
        rebuilt = trace_from_dict(trace_to_dict(benign_2d_run.trace))
        assert check_all(rebuilt).ok
        assert verify_state_evolution(rebuilt).ok

    def test_file_roundtrip(self, benign_1d_run, tmp_path):
        path = tmp_path / "trace.json"
        dump_trace(benign_1d_run.trace, path)
        rebuilt = load_trace(path)
        assert rebuilt.n == benign_1d_run.trace.n
        assert check_all(rebuilt).ok

    def test_version_check(self, benign_1d_run):
        obj = trace_to_dict(benign_1d_run.trace)
        obj["format"] = 999
        with pytest.raises(ValueError):
            trace_from_dict(obj)
