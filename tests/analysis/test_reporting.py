"""Tests for table / series rendering."""

import pytest

from repro.analysis.reporting import (
    format_value,
    render_series,
    render_table,
    spark,
)


class TestFormatValue:
    def test_none(self):
        assert format_value(None).strip() == "-"

    def test_bool(self):
        assert format_value(True).strip() == "yes"
        assert format_value(False).strip() == "no"

    def test_int(self):
        assert format_value(42).strip() == "42"

    def test_float_midrange(self):
        assert format_value(3.14159).strip() == "3.14159"

    def test_float_tiny_scientific(self):
        assert "e" in format_value(1.5e-9)

    def test_zero(self):
        assert format_value(0.0).strip() == "0"

    def test_string_passthrough(self):
        assert format_value("abc").strip() == "abc"


class TestRenderTable:
    def test_structure(self):
        out = render_table(
            "T1", ["a", "b"], [[1, 2.5], [3, None]]
        )
        lines = out.splitlines()
        assert lines[0] == "T1"
        assert "a" in lines[2] and "b" in lines[2]
        assert len(lines) == 6  # title, rule, header, rule, 2 rows

    def test_column_alignment(self):
        out = render_table("T", ["col"], [[1], [22], [333]], width=8)
        rows = out.splitlines()[4:]
        assert all(len(r) == 8 for r in rows)


class TestSpark:
    def test_monotone(self):
        chars = [spark(v, 1e-6, 1.0) for v in (1e-6, 1e-3, 1.0)]
        assert chars[0] <= chars[1] <= chars[2]

    def test_zero_is_blank(self):
        assert spark(0.0, 1e-6, 1.0) == " "

    def test_degenerate_range(self):
        assert spark(1.0, 1.0, 1.0) == " "


class TestRenderSeries:
    def test_structure(self):
        out = render_series(
            "Fig", "t", [0, 1, 2],
            {"measured": [1.0, 0.5, 0.1], "bound": [2.0, 1.5, 1.0]},
        )
        lines = out.splitlines()
        assert lines[0] == "Fig"
        assert len(lines) == 4 + 3  # header block + 3 data rows

    def test_handles_short_series(self):
        out = render_series("F", "t", [0, 1], {"a": [1.0]})
        assert "-" in out.splitlines()[-1]  # missing value rendered as '-'
