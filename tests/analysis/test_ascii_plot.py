"""Tests for the ASCII polytope renderer."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import AsciiCanvas, plot_execution
from repro.geometry.polytope import ConvexPolytope


class TestCanvas:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            AsciiCanvas(width=2, height=2)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            AsciiCanvas(lower=np.array([1.0, 0.0]), upper=np.array([0.0, 1.0]))

    def test_point_markers(self):
        canvas = AsciiCanvas(width=20, height=10)
        canvas.plot_points([[0.0, 0.0], [0.9, 0.9]], marker="o")
        out = canvas.render()
        assert out.count("o") == 2

    def test_out_of_window_points_skipped(self):
        canvas = AsciiCanvas(width=20, height=10)
        canvas.plot_points([[5.0, 5.0]])
        assert "o" not in canvas.render()

    def test_polytope_fill_and_edge(self):
        canvas = AsciiCanvas(
            width=30, height=15, lower=np.array([-2.0, -2.0]), upper=np.array([2.0, 2.0])
        )
        square = ConvexPolytope.from_points([[-1, -1], [1, -1], [1, 1], [-1, 1]])
        canvas.plot_polytope(square)
        out = canvas.render()
        assert "#" in out  # boundary drawn
        assert "." in out  # interior filled

    def test_empty_polytope_noop(self):
        canvas = AsciiCanvas(width=20, height=10)
        canvas.plot_polytope(ConvexPolytope.empty(2))
        body = canvas.render().splitlines()[1:-2]
        assert all(set(line) <= {"|", " "} for line in body)

    def test_1d_polytope_rejected(self):
        canvas = AsciiCanvas(width=20, height=10)
        with pytest.raises(ValueError):
            canvas.plot_polytope(ConvexPolytope.from_interval(0, 1))

    def test_title_rendered(self):
        canvas = AsciiCanvas(width=20, height=10)
        assert canvas.render(title="hello").startswith("hello")


class TestPlotExecution:
    def test_full_picture(self, benign_2d_run):
        result = benign_2d_run
        poly = next(iter(result.fault_free_outputs.values()))
        picture = plot_execution(
            result.trace.all_inputs,
            poly,
            faulty=result.trace.faulty,
            title="run",
        )
        assert "o" in picture
        assert "#" in picture or "." in picture

    def test_faulty_marked_differently(self, starved_2d_run):
        result = starved_2d_run
        poly = next(iter(result.fault_free_outputs.values()))
        picture = plot_execution(
            result.trace.all_inputs, poly, faulty=result.trace.faulty
        )
        assert "x" in picture  # the faulty outlier
        assert "o" in picture

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            plot_execution(
                np.zeros((3, 1)), ConvexPolytope.from_interval(0, 1)
            )
