"""Engine wiring of the shared cross-worker geometry cache.

Two engine workers pointed at one ``cache_dir`` must (a) never corrupt
each other, (b) produce rows byte-identical to a cache-less and to a
cold-cache run, and (c) actually share: a second sweep over the same
grid — fresh worker processes, warm directory — answers its cold misses
from entries the first sweep's workers wrote (``foreign`` hits).
"""

import json

import numpy as np

from repro.analysis.engine import TaskSpec, run_grid, task_key
from repro.geometry.combination import linear_combination
from repro.geometry.intersection import intersect_subset_hulls
from repro.geometry.polytope import ConvexPolytope

# ---------------------------------------------------------------------------
# Module-level cell (picklable for pool workers).


def geometry_cell(*, seed, family):
    """Deterministic geometry work shared across cells of one ``family``.

    Every cell of a family computes the same combination and subset
    intersection (content-identical inputs — the worst-case redundancy
    the shared cache exists to collapse), plus one seed-specific
    combination so each cell also does unique work.
    """
    rng = np.random.default_rng(family)
    polys = [
        ConvexPolytope.from_points(rng.normal(size=(8, 2))) for _ in range(3)
    ]
    shared = linear_combination(polys, [0.5, 0.25, 0.25])
    inter = intersect_subset_hulls(rng.normal(size=(9, 2)), 2)
    own_rng = np.random.default_rng(1000 + seed)
    own = linear_combination(
        [
            ConvexPolytope.from_points(own_rng.normal(size=(6, 2)))
            for _ in range(2)
        ],
        [0.5, 0.5],
    )
    return {
        "seed": seed,
        "shared_digest": shared.vertices.tobytes().hex(),
        "inter_digest": inter.vertices.tobytes().hex(),
        "own_digest": own.vertices.tobytes().hex(),
    }


def grid(seeds, family=7):
    return [
        TaskSpec(
            key=task_key(seed=s, family=family),
            runner=geometry_cell,
            params={"seed": s, "family": family},
        )
        for s in seeds
    ]


def rows_bytes(report) -> str:
    return json.dumps(report.rows(), sort_keys=True)


def shared_counters(report) -> dict:
    merged = report.counters
    return {k: v for k, v in merged.items() if k.startswith("shared_cache")}


class TestEngineSharedCache:
    def test_two_workers_one_dir_byte_identical(self, tmp_path):
        """Concurrent workers on one cache dir: safe and bit-identical."""
        baseline = run_grid(grid(range(6)), workers=1)
        assert baseline.failed == 0
        cached = run_grid(
            grid(range(6)),
            workers=2,
            cache_dir=tmp_path / "cache",
            start_method="spawn",
        )
        assert cached.failed == 0
        assert rows_bytes(cached) == rows_bytes(baseline)
        # The workers went through the shared cache (misses and writes
        # observed), whatever the interleaving.
        stats = shared_counters(cached)
        assert stats.get("shared_cache_writes", 0) > 0
        assert stats.get("shared_cache_errors", 0) == 0

    def test_warm_directory_yields_foreign_hits(self, tmp_path):
        """Fresh worker processes answer cold misses from siblings' entries."""
        cache = tmp_path / "cache"
        cold = run_grid(
            grid(range(4)), workers=2, cache_dir=cache, start_method="spawn"
        )
        assert cold.failed == 0
        warm = run_grid(
            grid(range(4)), workers=2, cache_dir=cache, start_method="spawn"
        )
        assert warm.failed == 0
        # Bit-identical rows from cache entries another process wrote.
        assert rows_bytes(warm) == rows_bytes(cold)
        stats = shared_counters(warm)
        assert stats.get("shared_cache_hits_foreign", 0) > 0, stats

    def test_cache_dir_env_restored(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        run_grid(grid(range(2)), workers=1, cache_dir=tmp_path / "c")
        import os

        assert "REPRO_CACHE_DIR" not in os.environ

    def test_cache_dir_created(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "cache"
        run_grid(grid(range(2)), workers=1, cache_dir=target)
        assert target.is_dir()
