"""Tests for the coefficients-of-ergodicity toolbox (Lemma 3 machinery)."""

import numpy as np
import pytest

from repro.analysis.ergodicity import (
    delta,
    is_scrambling,
    lambda_coefficient,
    lemma3_chain_bound,
    paper_uniform_bound,
    pairwise_common_mass,
    verify_submultiplicativity,
)
from repro.core.matrix import reconstruct_transition_matrices


class TestCoefficients:
    def test_delta_of_rank_one(self):
        a = np.tile([0.2, 0.3, 0.5], (3, 1))
        assert delta(a) == 0.0

    def test_delta_of_identity(self):
        assert delta(np.eye(3)) == 1.0

    def test_lambda_of_rank_one_is_zero(self):
        a = np.tile([0.25, 0.75], (2, 1))
        assert lambda_coefficient(a) == pytest.approx(0.0)

    def test_lambda_of_identity_is_one(self):
        assert lambda_coefficient(np.eye(4)) == pytest.approx(1.0)

    def test_common_mass_example(self):
        a = np.array([[0.5, 0.5, 0.0], [0.0, 0.5, 0.5]])
        # min over the single pair: shared mass at column 2 = 0.5.
        assert pairwise_common_mass(a) == pytest.approx(0.5)

    def test_scrambling_detection(self):
        scrambling = np.array([[0.5, 0.5, 0.0], [0.0, 0.5, 0.5], [0.5, 0.0, 0.5]])
        assert is_scrambling(scrambling)
        assert not is_scrambling(np.eye(3))

    def test_delta_bounded_by_lambda(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a = rng.dirichlet(np.ones(4), size=4)
            assert delta(a) <= lambda_coefficient(a) + 1e-12


class TestChainBounds:
    def _random_quorum_matrices(self, n=6, rounds=8, seed=1):
        """Matrices shaped like Algorithm CC's M[t] (quorum averaging)."""
        rng = np.random.default_rng(seed)
        out = []
        for _ in range(rounds):
            m = np.zeros((n, n))
            for i in range(n):
                quorum = rng.choice(n, size=n - 1, replace=False)
                quorum = set(quorum.tolist()) | {i}
                for k in quorum:
                    m[i, k] = 1.0 / len(quorum)
            out.append(m)
        return out

    def test_submultiplicativity_on_synthetic_chains(self):
        matrices = self._random_quorum_matrices()
        assert verify_submultiplicativity(matrices)

    def test_chain_bound_monotone(self):
        matrices = self._random_quorum_matrices(seed=2)
        chain = lemma3_chain_bound(matrices)
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(chain, chain[1:]))

    def test_chain_sharper_than_uniform_on_real_runs(self, crashy_2d_run):
        matrices = reconstruct_transition_matrices(crashy_2d_run.trace)
        chain = lemma3_chain_bound(matrices)
        uniform = paper_uniform_bound(matrices, crashy_2d_run.trace.n)
        # Quorums of n-f > n/2 share much more than 1/n of mass: the
        # per-round chain must beat the paper's uniform envelope.
        assert all(c <= u + 1e-12 for c, u in zip(chain, uniform))
        assert chain[-1] < uniform[-1]

    def test_real_matrices_are_scrambling(self, all_session_runs):
        """The Lemma 3 proof-sketch observation, verified on executions:
        every reconstructed M[t] is scrambling (any two quorums of n-f
        intersect)."""
        for result in all_session_runs:
            for m in reconstruct_transition_matrices(result.trace):
                assert is_scrambling(m)

    def test_submultiplicativity_on_real_runs(self, all_session_runs):
        for result in all_session_runs:
            matrices = reconstruct_transition_matrices(result.trace)
            assert verify_submultiplicativity(matrices)
