"""Shared fixtures: canonical executions reused across test modules.

Full consensus runs cost 0.1-2 s each; session-scoped fixtures let many
test modules assert different properties of the *same* executions without
re-running them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.runner import CCResult, run_convex_hull_consensus
from repro.runtime.faults import FaultPlan
from repro.runtime.scheduler import BurstyScheduler, TargetedDelayScheduler
from repro.workloads import gaussian_cluster, with_outliers


@pytest.fixture(scope="session")
def benign_1d_run() -> CCResult:
    """n=5, d=1, fault-free, random scheduler."""
    rng = np.random.default_rng(42)
    inputs = rng.uniform(-1.0, 1.0, size=(5, 1))
    return run_convex_hull_consensus(inputs, f=1, eps=0.1, seed=7)


@pytest.fixture(scope="session")
def benign_2d_run() -> CCResult:
    """n=8, d=2, fault-free."""
    inputs = gaussian_cluster(8, 2, seed=1)
    return run_convex_hull_consensus(inputs, f=1, eps=0.3, seed=3)


@pytest.fixture(scope="session")
def crashy_2d_run() -> CCResult:
    """n=8, d=2, one outlier-faulty process crashing mid-broadcast."""
    inputs = with_outliers(gaussian_cluster(8, 2, seed=2), [7], magnitude=4.0, seed=2)
    plan = FaultPlan.crash_at({7: (1, 3)})
    return run_convex_hull_consensus(
        inputs,
        f=1,
        eps=0.3,
        fault_plan=plan,
        scheduler=BurstyScheduler(seed=5),
        input_bounds=(-5.0, 5.0),
    )


@pytest.fixture(scope="session")
def starved_2d_run() -> CCResult:
    """n=8, d=2, silent faulty outlier starved by the scheduler (Thm 3 style)."""
    inputs = with_outliers(gaussian_cluster(8, 2, seed=3), [7], magnitude=4.0, seed=3)
    plan = FaultPlan.silent_faulty([7])
    return run_convex_hull_consensus(
        inputs,
        f=1,
        eps=0.3,
        fault_plan=plan,
        scheduler=TargetedDelayScheduler(slow=frozenset({7}), seed=9),
        input_bounds=(-5.0, 5.0),
    )


@pytest.fixture(scope="session")
def round0_crash_run() -> CCResult:
    """n=6, d=1, crash during the stable-vector fan-out with starvation.

    Produces strictly nested views among fault-free processes (the
    Containment property doing real work).
    """
    rng = np.random.default_rng(11)
    inputs = rng.uniform(-1.0, 1.0, size=(6, 1))
    inputs[5] = -1.0
    plan = FaultPlan.crash_at({5: (0, 1)})
    return run_convex_hull_consensus(
        inputs,
        f=1,
        eps=0.1,
        fault_plan=plan,
        scheduler=TargetedDelayScheduler(slow=frozenset({0, 5}), seed=4),
    )


@pytest.fixture(scope="session")
def all_session_runs(
    benign_1d_run, benign_2d_run, crashy_2d_run, starved_2d_run, round0_crash_run
) -> list[CCResult]:
    return [
        benign_1d_run,
        benign_2d_run,
        crashy_2d_run,
        starved_2d_run,
        round0_crash_run,
    ]
