"""Tests for the coordinate-wise baseline and its validity failure."""

import numpy as np
import pytest

from repro.baselines.coordinatewise import run_coordinatewise_consensus
from repro.core.runner import run_convex_hull_consensus
from repro.core.invariants import check_validity
from repro.runtime.faults import FaultPlan
from repro.runtime.scheduler import TargetedDelayScheduler
from repro.workloads import collinear, gaussian_cluster


class TestBasics:
    def test_points_agree(self):
        inputs = gaussian_cluster(6, 2, seed=0)
        result = run_coordinatewise_consensus(inputs, 1, eps=0.05, seed=1)
        pts = list(result.fault_free_points.values())
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                assert np.linalg.norm(pts[i] - pts[j]) < 0.05

    def test_stays_in_bounding_box(self):
        inputs = gaussian_cluster(6, 2, seed=1)
        result = run_coordinatewise_consensus(inputs, 1, eps=0.05, seed=2)
        lo, hi = inputs.min(axis=0), inputs.max(axis=0)
        for pt in result.fault_free_points.values():
            assert np.all(pt >= lo - 1e-9) and np.all(pt <= hi + 1e-9)

    def test_one_trace_per_coordinate(self):
        inputs = gaussian_cluster(6, 3, seed=2)
        result = run_coordinatewise_consensus(inputs, 1, eps=0.1, seed=0)
        assert len(result.coordinate_traces) == 3


class TestValidityFailure:
    """The experiment E4 phenomenon, pinned as a regression test."""

    def _adversarial_run(self, seed):
        inputs = collinear(8, 2, seed=3) * 2.0
        plan = FaultPlan.crash_at({7: (0, 1)})

        def factory(coord):
            if coord == 0:
                return TargetedDelayScheduler(slow=frozenset({0, 7}), seed=10 + seed)
            return TargetedDelayScheduler(slow=frozenset({3}), seed=seed)

        return inputs, run_coordinatewise_consensus(
            inputs, 1, eps=0.05, fault_plan=plan,
            scheduler_factory=factory, seed=seed,
        )

    def test_violates_convex_validity(self):
        inputs, result = self._adversarial_run(seed=1)
        violations = result.validity_violations(inputs[:7])
        assert violations, "expected the baseline to leave the hull"
        assert max(violations.values()) > 0.01

    def test_cc_is_valid_on_same_workload(self):
        inputs = collinear(8, 2, seed=3) * 2.0
        plan = FaultPlan.crash_at({7: (0, 1)})
        result = run_convex_hull_consensus(
            inputs, 1, 0.05, fault_plan=plan,
            scheduler=TargetedDelayScheduler(slow=frozenset({0, 7}), seed=11),
        )
        assert check_validity(result.trace).ok
