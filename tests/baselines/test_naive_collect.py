"""Tests for the naive-collection ablation variant."""

import numpy as np
import pytest

from repro.baselines.naive_collect import run_naive_collect_consensus
from repro.core.invariants import (
    check_agreement,
    check_stable_vector,
    check_termination,
    check_validity,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.scheduler import BurstyScheduler, RandomScheduler
from repro.workloads import uniform_box


class TestNaiveCollect:
    def test_convergence_properties_still_hold(self):
        inputs = uniform_box(6, 1, seed=0)
        result = run_naive_collect_consensus(
            inputs, 1, 0.2, scheduler=RandomScheduler(seed=1)
        )
        trace = result.trace
        assert check_validity(trace).ok
        assert check_agreement(trace).ok
        assert check_termination(trace).ok

    def test_crash_tolerated(self):
        inputs = uniform_box(6, 1, seed=1)
        plan = FaultPlan.crash_at({5: (0, 2)})
        result = run_naive_collect_consensus(
            inputs, 1, 0.2, fault_plan=plan, scheduler=RandomScheduler(seed=2)
        )
        assert sorted(result.report.decided) == [0, 1, 2, 3, 4]

    def test_views_have_exactly_quorum_entries(self):
        inputs = uniform_box(6, 1, seed=2)
        result = run_naive_collect_consensus(
            inputs, 1, 0.2, scheduler=RandomScheduler(seed=3)
        )
        for proc in result.trace.processes:
            if proc.r_view is not None:
                assert len(proc.r_view) == 5  # n - f, frozen at quorum

    def test_containment_can_fail(self):
        # The ablation's raison d'etre: some seeded execution must produce
        # incomparable views (stable vector would never allow this).
        inputs = uniform_box(7, 1, seed=31)
        plan = FaultPlan.crash_at({6: (0, 2)})
        failures = 0
        for seed in range(6):
            result = run_naive_collect_consensus(
                inputs, 1, 0.1, fault_plan=plan,
                scheduler=BurstyScheduler(seed=seed),
            )
            if not check_stable_vector(result.trace).containment_ok:
                failures += 1
        assert failures > 0

    def test_2d_run(self):
        inputs = uniform_box(5, 2, seed=4)
        result = run_naive_collect_consensus(
            inputs, 1, 0.3, scheduler=RandomScheduler(seed=5)
        )
        assert check_agreement(result.trace).ok
