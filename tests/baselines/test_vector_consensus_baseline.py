"""Tests for the point-valued vector-consensus baseline."""

import numpy as np
import pytest

from repro.baselines.vector_consensus import run_baseline_vector_consensus
from repro.core.runner import run_convex_hull_consensus
from repro.geometry.polytope import ConvexPolytope
from repro.runtime.faults import FaultPlan
from repro.runtime.scheduler import RandomScheduler, TargetedDelayScheduler
from repro.workloads import gaussian_cluster, with_outliers


class TestBaselineVC:
    def test_agreement(self):
        inputs = gaussian_cluster(8, 2, seed=0)
        result = run_baseline_vector_consensus(inputs, 1, eps=0.05, seed=1)
        assert result.max_pairwise_distance() < 0.05

    def test_validity_under_outlier(self):
        inputs = with_outliers(gaussian_cluster(8, 2, seed=1), [7], seed=1)
        plan = FaultPlan.silent_faulty([7])
        result = run_baseline_vector_consensus(
            inputs, 1, eps=0.05, fault_plan=plan,
            scheduler=TargetedDelayScheduler(slow=frozenset({7}), seed=3),
            input_bounds=(-6, 6),
        )
        hull = ConvexPolytope.from_points(inputs[:7])
        for pid, point in result.fault_free_points.items():
            assert hull.contains_point(point, tol=1e-6), pid

    def test_crash_tolerated(self):
        inputs = gaussian_cluster(8, 2, seed=2)
        plan = FaultPlan.crash_at({7: (1, 2)})
        result = run_baseline_vector_consensus(
            inputs, 1, eps=0.1, fault_plan=plan, seed=4
        )
        assert len(result.fault_free_points) == 7

    def test_baseline_point_inside_cc_polytope(self):
        # The reduction story: the baseline's decision is a selector of
        # the same safe information, so it lands inside CC's polytope.
        inputs = gaussian_cluster(8, 2, seed=3)
        sched = RandomScheduler(seed=7)
        baseline = run_baseline_vector_consensus(inputs, 1, eps=0.05, scheduler=sched)
        sched2 = RandomScheduler(seed=7)
        cc = run_convex_hull_consensus(inputs, 1, 0.05, scheduler=sched2)
        for pid, point in baseline.fault_free_points.items():
            assert cc.outputs[pid].contains_point(point, tol=1e-5), pid

    def test_1d(self):
        rng = np.random.default_rng(5)
        inputs = rng.uniform(-1, 1, size=(5, 1))
        result = run_baseline_vector_consensus(inputs, 1, eps=0.05, seed=2)
        assert result.max_pairwise_distance() < 0.05
