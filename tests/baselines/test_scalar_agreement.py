"""Tests for the scalar approximate-agreement baseline."""

import numpy as np
import pytest

from repro.baselines.scalar_agreement import ScalarAgreementProcess
from repro.core.config import CCConfig
from repro.runtime.faults import FaultPlan
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.simulator import run_simulation


def run_scalar(values, f=1, eps=0.05, seed=0, plan=None):
    n = len(values)
    config = CCConfig(
        n=n, f=f, dim=1, eps=eps,
        input_lower=float(min(values)), input_upper=float(max(values)),
        enforce_resilience=False,
    )
    cores = [
        ScalarAgreementProcess(pid=i, config=config, input_value=values[i])
        for i in range(n)
    ]
    run_simulation(
        cores, fault_plan=plan, scheduler=RandomScheduler(seed=seed)
    )
    return cores, config


class TestScalarAgreement:
    def test_agreement(self):
        cores, config = run_scalar([0.0, 0.2, 0.4, 0.6, 1.0])
        outs = [c.output for c in cores if c.done]
        assert max(outs) - min(outs) < config.eps

    def test_validity_within_trimmed_range(self):
        values = [0.0, 0.2, 0.4, 0.6, 5.0]  # 5.0 is the incorrect extreme
        cores, _ = run_scalar(values, f=1)
        for core in cores:
            if core.done:
                # f-trimmed initial values lie in [x_(2), x_(n-1)] of each
                # view; averaging preserves the enclosing interval.
                assert 0.0 <= core.output <= 0.6 + 1e-9

    def test_crash_tolerated(self):
        plan = FaultPlan.crash_at({4: (1, 1)})
        cores, config = run_scalar([0.0, 0.25, 0.5, 0.75, 1.0], plan=plan)
        decided = [c for c in cores if c.done]
        assert len(decided) == 4
        outs = [c.output for c in decided]
        assert max(outs) - min(outs) < config.eps

    def test_requires_1d_config(self):
        config = CCConfig(n=5, f=1, dim=2, eps=0.1)
        with pytest.raises(ValueError):
            ScalarAgreementProcess(pid=0, config=config, input_value=0.0)

    def test_deterministic(self):
        a, _ = run_scalar([0.0, 0.3, 0.6, 0.9, 1.0], seed=5)
        b, _ = run_scalar([0.0, 0.3, 0.6, 0.9, 1.0], seed=5)
        for x, y in zip(a, b):
            assert x.output == pytest.approx(y.output, abs=0)
