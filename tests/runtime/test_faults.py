"""Unit tests for crash specs and fault plans."""

import pytest

from repro.runtime.faults import CrashSpec, FaultPlan


class TestCrashSpec:
    def test_valid(self):
        spec = CrashSpec(round_index=2, after_sends=3)
        assert spec.round_index == 2

    def test_negative_round(self):
        with pytest.raises(ValueError):
            CrashSpec(round_index=-1)

    def test_negative_sends(self):
        with pytest.raises(ValueError):
            CrashSpec(round_index=0, after_sends=-1)


class TestFaultPlan:
    def test_none(self):
        plan = FaultPlan.none()
        assert not plan.faulty
        assert plan.crash_spec(0) is None

    def test_crash_at(self):
        plan = FaultPlan.crash_at({3: (1, 2), 5: (0, 0)})
        assert plan.faulty == {3, 5}
        assert plan.crash_spec(3) == CrashSpec(round_index=1, after_sends=2)
        assert plan.crash_spec(4) is None

    def test_silent_faulty(self):
        plan = FaultPlan.silent_faulty([1, 2])
        assert plan.faulty == {1, 2}
        assert plan.crash_spec(1) is None
        assert plan.incorrect == {1, 2}

    def test_crash_spec_for_nonfaulty_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(faulty=frozenset({1}), crashes={2: CrashSpec(0)})

    def test_incorrect_subset_of_faulty(self):
        with pytest.raises(ValueError):
            FaultPlan(
                faulty=frozenset({1}),
                incorrect_inputs=frozenset({1, 2}),
            )

    def test_incorrect_defaults_to_all_faulty(self):
        plan = FaultPlan.crash_at({1: (0, 0)})
        assert plan.incorrect == {1}

    def test_crash_with_correct_inputs_variant(self):
        # The paper's "crash faults with correct inputs" extension can be
        # expressed: faulty processes whose inputs stay correct.
        plan = FaultPlan(
            faulty=frozenset({1}),
            crashes={1: CrashSpec(1, 0)},
            incorrect_inputs=frozenset(),
        )
        assert plan.incorrect == frozenset()
