"""Unit tests for adversarial delivery schedulers."""

import numpy as np

from repro.runtime.messages import Envelope, InputTuple, SVInit
from repro.runtime.scheduler import (
    BurstyScheduler,
    FifoFairScheduler,
    RandomScheduler,
    TargetedDelayScheduler,
    default_scheduler,
)


def _env(src, dst=1):
    return Envelope(
        src=src,
        dst=dst,
        seq=0,
        send_round=0,
        payload=SVInit(entry=InputTuple(value=(0.0,), sender=src)),
    )


class TestRandomScheduler:
    def test_in_range(self):
        sched = RandomScheduler(seed=0)
        heads = [_env(0), _env(2), _env(3)]
        for _ in range(50):
            assert 0 <= sched.choose(heads) < 3

    def test_deterministic_after_reset(self):
        sched = RandomScheduler(seed=1)
        heads = [_env(i) for i in range(5)]
        first = [sched.choose(heads) for _ in range(20)]
        sched.reset()
        second = [sched.choose(heads) for _ in range(20)]
        assert first == second

    def test_covers_all_choices(self):
        sched = RandomScheduler(seed=2)
        heads = [_env(i) for i in range(4)]
        seen = {sched.choose(heads) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestFifoFair:
    def test_round_robin(self):
        sched = FifoFairScheduler()
        heads = [_env(2, 0), _env(0, 1), _env(1, 2)]
        picks = [sched.choose(heads) for _ in range(3)]
        # Sorted by (src, dst): env(0,1)=idx1, env(1,2)=idx2, env(2,0)=idx0.
        assert picks == [1, 2, 0]


class TestTargetedDelay:
    def test_starves_slow_sources(self):
        sched = TargetedDelayScheduler(slow=frozenset({9}), seed=0)
        heads = [_env(9), _env(1), _env(9), _env(2)]
        for _ in range(100):
            pick = sched.choose(heads)
            assert heads[pick].src != 9

    def test_delivers_slow_when_nothing_else(self):
        sched = TargetedDelayScheduler(slow=frozenset({9}), seed=0)
        heads = [_env(9), _env(9)]
        assert sched.choose(heads) in (0, 1)

    def test_accepts_any_iterable(self):
        sched = TargetedDelayScheduler(slow={1, 2}, seed=0)
        assert isinstance(sched.slow, frozenset)


class TestBursty:
    def test_sticks_to_one_source_within_burst(self):
        sched = BurstyScheduler(seed=3, max_burst=100)
        heads = [_env(0), _env(1), _env(2)]
        first = heads[sched.choose(heads)].src
        # With a huge burst size the immediate next picks stay on the source.
        for _ in range(5):
            assert heads[sched.choose(heads)].src == first

    def test_reset_restores_determinism(self):
        sched = BurstyScheduler(seed=4)
        heads = [_env(i) for i in range(3)]
        a = [sched.choose(heads) for _ in range(30)]
        sched.reset()
        b = [sched.choose(heads) for _ in range(30)]
        assert a == b


def test_default_scheduler_is_random():
    assert isinstance(default_scheduler(seed=1), RandomScheduler)
