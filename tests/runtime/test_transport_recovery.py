"""Transport across crash + recovery: boundary oracle, checkpoints, dups."""

import numpy as np
import pytest

from repro.core.runner import run_convex_hull_consensus
from repro.geometry.cache import PERF
from repro.runtime.channel import ChannelError
from repro.runtime.faults import (
    AMNESIA,
    DURABLE,
    FaultPlan,
    LinkFaultPlan,
    LinkFaultSpec,
)
from repro.runtime.transport import DATA, Frame, TransportNetwork


class TestCrashedDropOracle:
    def _delivered_frame(self, transport, seq=0):
        transport.send(0, 1, payload="m", send_round=0)
        return Frame(kind=DATA, src=0, dst=1, seq=seq, payload="m")

    def test_boundary_advances_without_app_delivery(self):
        transport = TransportNetwork(2)
        frame = self._delivered_frame(transport)
        drops0 = PERF.crashed_app_drops
        transport.note_crashed_drop(frame)
        assert PERF.crashed_app_drops == drops0 + 1
        assert transport.messages_delivered == 0  # the app never saw it
        # The boundary oracle moved on: the *next* frame delivers clean.
        transport.send(0, 1, payload="m2", send_round=0)
        transport.deliver_to_app(
            Frame(kind=DATA, src=0, dst=1, seq=1, payload="m2")
        )
        assert transport.messages_delivered == 1

    def test_out_of_order_retirement_still_trips_oracle(self):
        transport = TransportNetwork(2)
        self._delivered_frame(transport)
        stale = Frame(kind=DATA, src=0, dst=1, seq=5, payload="x")
        with pytest.raises(ChannelError, match="crashed endpoint"):
            transport.note_crashed_drop(stale)


class TestTransportCheckpoint:
    def test_checkpoint_restore_round_trip(self):
        transport = TransportNetwork(3)
        for _ in range(3):
            transport.send(0, 1, payload="m", send_round=0)
        transport.send(2, 0, payload="m", send_round=0)
        snap = transport.checkpoint()
        assert snap["channels"]["0->1"]["send_seq"] == 3
        assert snap["channels"]["2->0"]["send_seq"] == 1
        # A rebuilt endpoint resumes numbering where the old one stopped:
        # its next send on 0->1 must use seq 3, not 0.
        rebuilt = TransportNetwork(3)
        rebuilt.restore_channels(snap)
        rebuilt.send(0, 1, payload="m4", send_round=1)
        assert rebuilt.checkpoint()["channels"]["0->1"]["send_seq"] == 4

    def test_checkpoint_lists_unacked_digest(self):
        transport = TransportNetwork(2)
        transport.send(0, 1, payload="m", send_round=0)
        transport.send(0, 1, payload="m2", send_round=0)
        snap = transport.checkpoint()
        assert snap["channels"]["0->1"]["unacked"] == [0, 1]

    def test_restored_counters_preserve_dup_suppression(self):
        # Sequence numbers stay burned across a restart: a stale copy of
        # an already-delivered frame reads as a duplicate, not fresh data.
        transport = TransportNetwork(2)
        transport.send(0, 1, payload="m", send_round=0)
        [ready] = transport.on_frame(
            Frame(kind=DATA, src=0, dst=1, seq=0, payload="m")
        )
        transport.deliver_to_app(ready)
        snap = transport.checkpoint()
        rebuilt = TransportNetwork(2)
        rebuilt.restore_channels(snap)
        dups0 = PERF.dup_drops
        assert rebuilt.on_frame(
            Frame(kind=DATA, src=0, dst=1, seq=0, payload="m")
        ) == []
        assert PERF.dup_drops == dups0 + 1


class TestRecoveryOverLossyLinks:
    def _run(self, durability, *, loss=0.15, dup=0.1, seed=2):
        rng = np.random.default_rng(19)
        inputs = rng.uniform(-1.0, 1.0, size=(5, 1))
        plan = FaultPlan.crash_recover(
            {4: (0, 2, 12)}, durability=durability
        )
        link_plan = LinkFaultPlan(
            default=LinkFaultSpec(loss=loss, dup=dup, delay=2), seed=7
        )
        return run_convex_hull_consensus(
            inputs,
            1,
            0.2,
            fault_plan=plan,
            seed=seed,
            input_bounds=(-1.0, 1.0),
            link_faults=link_plan,
        )

    def test_durable_recovery_survives_lossy_fabric(self):
        result = self._run(DURABLE)
        assert 4 in result.report.recovered
        assert 4 in result.report.decided
        from repro.core.invariants import check_all

        assert check_all(result.trace).ok

    def test_amnesia_recovery_never_trips_channel_oracle(self):
        # The revived endpoint resumes the acked seq stream: dup
        # suppression and the boundary oracle must both survive the
        # restart (ChannelError would escape run_convex_hull_consensus).
        result = self._run(AMNESIA)
        assert 4 in result.report.recovered
        from repro.core.invariants import check_all

        report = check_all(result.trace)
        assert report.validity.ok
        assert report.agreement.ok
