"""``reset()`` determinism for every scheduler strategy, plus behaviour
of the chaos-engine schedulers (adaptive adversary, recorder, replay).

The fuzzer's replay guarantee rests on one property: a scheduler driven
through the same head sequences after ``reset()`` makes the same
decisions.  Every strategy must satisfy it, including the stateful ones.
"""

import pytest

from repro.runtime.messages import Envelope, InputTuple, SVInit
from repro.runtime.scheduler import (
    AdaptiveAdversaryScheduler,
    BurstyScheduler,
    FifoFairScheduler,
    RandomScheduler,
    ReplayScheduler,
    ScheduleRecorder,
    TargetedDelayScheduler,
)


def _env(src, dst):
    return Envelope(
        src=src,
        dst=dst,
        seq=0,
        send_round=0,
        payload=SVInit(entry=InputTuple(value=(0.0,), sender=src)),
    )


def _head_sequences():
    """A fixed, varied drive: different sizes, sources, destinations."""
    sequences = []
    for step in range(40):
        heads = [
            _env(src, (src + step) % 4)
            for src in range((step % 5) + 2)
        ]
        sequences.append(heads)
    return sequences


STRATEGIES = [
    pytest.param(lambda: RandomScheduler(seed=3), id="random"),
    pytest.param(lambda: FifoFairScheduler(), id="fifo"),
    pytest.param(lambda: BurstyScheduler(seed=5), id="bursty"),
    pytest.param(
        lambda: TargetedDelayScheduler(slow=frozenset({1}), seed=7),
        id="targeted",
    ),
    pytest.param(lambda: AdaptiveAdversaryScheduler(seed=9), id="adaptive"),
    pytest.param(
        lambda: ScheduleRecorder(inner=RandomScheduler(seed=11)),
        id="recorder",
    ),
    pytest.param(
        lambda: ReplayScheduler(decisions=((0, 1), (1, 2), (2, 0)) * 20),
        id="replay",
    ),
]


class TestResetDeterminism:
    @pytest.mark.parametrize("make", STRATEGIES)
    def test_same_decisions_after_reset(self, make):
        sched = make()
        drives = _head_sequences()
        first = [sched.choose(heads) for heads in drives]
        sched.reset()
        second = [sched.choose(heads) for heads in drives]
        assert first == second

    @pytest.mark.parametrize("make", STRATEGIES)
    def test_two_instances_agree(self, make):
        a, b = make(), make()
        drives = _head_sequences()
        assert [a.choose(h) for h in drives] == [b.choose(h) for h in drives]

    @pytest.mark.parametrize("make", STRATEGIES)
    def test_choices_always_in_range(self, make):
        sched = make()
        for heads in _head_sequences():
            assert 0 <= sched.choose(heads) < len(heads)


class TestAdaptiveAdversary:
    def test_starves_the_least_delivered_process(self):
        sched = AdaptiveAdversaryScheduler(seed=0)
        # Process 0 has received nothing; with alternatives available the
        # adversary must not deliver to it.
        heads = [_env(1, 0), _env(2, 1), _env(3, 1)]
        for _ in range(10):
            pick = sched.choose(heads)
            assert heads[pick].dst != 0

    def test_delivers_when_target_is_the_only_option(self):
        sched = AdaptiveAdversaryScheduler(seed=0)
        heads = [_env(1, 0), _env(2, 0)]
        assert sched.choose(heads) in (0, 1)

    def test_reset_clears_delivery_counts(self):
        sched = AdaptiveAdversaryScheduler(seed=0)
        for _ in range(5):
            sched.choose([_env(1, 0), _env(2, 1)])
        sched.reset()
        assert sched._delivered == {}


class TestScheduleRecorder:
    def test_records_src_dst_pairs(self):
        sched = ScheduleRecorder(inner=FifoFairScheduler())
        heads = [_env(0, 1), _env(2, 3)]
        pick = sched.choose(heads)
        assert sched.decisions == [(heads[pick].src, heads[pick].dst)]

    def test_reset_clears_recording_and_inner(self):
        sched = ScheduleRecorder(inner=RandomScheduler(seed=1))
        drives = _head_sequences()
        first = [sched.choose(h) for h in drives]
        recorded = list(sched.decisions)
        sched.reset()
        assert sched.decisions == []
        assert [sched.choose(h) for h in drives] == first
        assert sched.decisions == recorded


class TestReplayScheduler:
    def test_replays_recorded_decisions_exactly(self):
        inner = RandomScheduler(seed=2)
        recorder = ScheduleRecorder(inner=inner)
        drives = _head_sequences()
        picks = [recorder.choose(h) for h in drives]
        replay = ReplayScheduler(decisions=tuple(recorder.decisions))
        assert [replay.choose(h) for h in drives] == picks

    def test_skips_unmatchable_decisions(self):
        # A decision for a channel not currently at head is skipped, and
        # the next matchable one is used — edited lists stay executable.
        replay = ReplayScheduler(decisions=((9, 9), (1, 0)))
        heads = [_env(0, 1), _env(1, 0)]
        assert replay.choose(heads) == 1

    def test_falls_back_to_head_zero_when_exhausted(self):
        replay = ReplayScheduler(decisions=())
        heads = [_env(0, 1), _env(1, 0)]
        assert replay.choose(heads) == 0
        assert replay.choose(heads) == 0
