"""ByzantineEngine: seeded lies, consistent forgeries, bounded palette."""

import numpy as np

from repro.geometry.cache import PERF
from repro.runtime.byzantine import ByzantineEngine, byzantine_engines
from repro.runtime.faults import ByzantineSpec, FaultPlan
from repro.runtime.messages import (
    BBroadcast,
    InputTuple,
    RoundMessage,
    SVInit,
    SVView,
    freeze_point,
    freeze_vertices,
)


def sv_init(value=0.5, sender=0):
    return SVInit(entry=InputTuple(value=freeze_point([value]), sender=sender))


class TestDeterminism:
    def test_same_spec_same_stream(self):
        spec = ByzantineSpec(seed=7)
        a = ByzantineEngine(3, spec, 4)
        b = ByzantineEngine(3, spec, 4)
        payloads = [sv_init(v) for v in (0.1, 0.2, 0.3)]
        seq_a = [a.mutate(p, dst) for p in payloads for dst in (0, 1, 2)]
        seq_b = [b.mutate(p, dst) for p in payloads for dst in (0, 1, 2)]
        assert seq_a == seq_b

    def test_different_pids_different_streams(self):
        spec = ByzantineSpec(behaviors=("forge",), seed=7)
        a = ByzantineEngine(1, spec, 4)
        b = ByzantineEngine(2, spec, 4)
        pa = a.mutate(sv_init(), 0)
        pb = b.mutate(sv_init(), 0)
        assert pa != pb


class TestBehaviors:
    def test_omit_swallows_and_counts(self):
        engine = ByzantineEngine(0, ByzantineSpec(behaviors=("omit",)), 4)
        before = PERF.byz_omissions
        assert engine.mutate(sv_init(), 1) is None
        assert PERF.byz_omissions == before + 1

    def test_forge_is_consistent_across_destinations(self):
        engine = ByzantineEngine(0, ByzantineSpec(behaviors=("forge",)), 4)
        payload = sv_init()
        before = PERF.byz_forgeries
        forged = [engine.mutate(payload, dst) for dst in (1, 2, 3)]
        assert PERF.byz_forgeries == before + 3
        assert forged[0] == forged[1] == forged[2]
        assert forged[0] != payload

    def test_equivocate_varies_per_destination(self):
        engine = ByzantineEngine(0, ByzantineSpec(behaviors=("equivocate",)), 4)
        payload = sv_init()
        before = PERF.byz_equivocations
        lies = [engine.mutate(payload, dst) for dst in (1, 2)]
        assert PERF.byz_equivocations == before + 2
        # The palette guarantees the first two fabrications are distinct
        # fresh entries.
        assert lies[0] != lies[1]

    def test_rate_zero_point_one_mostly_passes_through(self):
        engine = ByzantineEngine(0, ByzantineSpec(rate=0.01, seed=3), 4)
        payload = sv_init()
        outcomes = [engine.mutate(payload, 1) for _ in range(50)]
        assert outcomes.count(payload) >= 40


class TestPaletteBound:
    def test_fake_values_come_from_a_bounded_palette(self):
        # An unbounded lie stream would inflate stable-vector views
        # forever; the engine must draw every fabricated point from at
        # most max(n, 2) values per dimension.
        n = 4
        engine = ByzantineEngine(0, ByzantineSpec(behaviors=("equivocate",)), n)
        values = set()
        for i in range(200):
            mutated = engine.mutate(sv_init(0.5, sender=0), i % 3)
            values.add(mutated.entry.value)
        assert len(values) <= n


class TestRewriteShapes:
    def test_svview_rewrite_preserves_senders(self):
        engine = ByzantineEngine(0, ByzantineSpec(behaviors=("forge",)), 4)
        view = SVView(
            entries=frozenset(
                InputTuple(value=freeze_point([float(i)]), sender=i)
                for i in range(3)
            )
        )
        mutated = engine.mutate(view, 1)
        assert {e.sender for e in mutated.entries} == {0, 1, 2}

    def test_round_message_rewrite_same_shape(self):
        engine = ByzantineEngine(0, ByzantineSpec(behaviors=("forge",)), 4)
        msg = RoundMessage(
            vertices=freeze_vertices(np.array([[0.0, 0.0], [1.0, 1.0]])),
            sender=0,
            round_index=2,
        )
        mutated = engine.mutate(msg, 1)
        assert isinstance(mutated, RoundMessage)
        assert mutated.sender == 0 and mutated.round_index == 2
        assert len(mutated.vertices) == 2
        assert all(len(v) == 2 for v in mutated.vertices)

    def test_rb_point_body_rewritten_claim_body_stays_valid_shape(self):
        engine = ByzantineEngine(0, ByzantineSpec(behaviors=("forge",)), 4)
        point_msg = BBroadcast(origin=0, round_index=0, body=(0.5, 0.5))
        claim_msg = BBroadcast(origin=0, round_index=1, body=(0, 1, 2))
        forged_point = engine.mutate(point_msg, 1)
        forged_claim = engine.mutate(claim_msg, 1)
        assert len(forged_point.body) == 2
        assert all(isinstance(v, float) for v in forged_point.body)
        assert forged_claim.body == tuple(sorted(forged_claim.body))
        assert all(0 <= p < 4 for p in forged_claim.body)
        assert len(forged_claim.body) == 3


class TestWiring:
    def test_engines_built_only_for_byzantine_pids(self):
        plan = FaultPlan.byzantine_at([1, 3], seed=2)
        engines = byzantine_engines(plan, 5)
        assert sorted(engines) == [1, 3]
        assert engines[1].pid == 1

    def test_no_byzantine_plan_builds_nothing(self):
        assert byzantine_engines(FaultPlan.none(), 5) == {}
