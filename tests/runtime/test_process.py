"""Unit tests for the process shell (crash interception, accounting)."""

from repro.runtime.faults import CrashSpec
from repro.runtime.messages import InputTuple, RoundMessage, SVInit
from repro.runtime.network import Network
from repro.runtime.process import ProcessShell, ProtocolCore


class FakeCore(ProtocolCore):
    """Scripted core: emits predeclared outgoing batches on demand."""

    def __init__(self, pid, batches):
        self.pid = pid
        self._batches = list(batches)
        self._round = 0
        self.received = []

    def set_round(self, r):
        self._round = r

    def on_start(self):
        return self._batches.pop(0) if self._batches else []

    def on_message(self, payload, src):
        self.received.append((payload, src))
        return self._batches.pop(0) if self._batches else []

    @property
    def current_round(self):
        return self._round

    @property
    def done(self):
        return False


def _sv(i=0):
    return SVInit(entry=InputTuple(value=(float(i),), sender=i))


def _rm(t):
    return RoundMessage(vertices=((0.0,),), sender=0, round_index=t)


class TestDispatch:
    def test_broadcast_expands_ascending(self):
        net = Network(4)
        core = FakeCore(0, [[(None, _sv())]])
        shell = ProcessShell(core, net)
        shell.start()
        heads = net.pending_heads({0, 1, 2, 3})
        assert sorted(env.dst for env in heads) == [1, 2, 3]

    def test_unicast(self):
        net = Network(3)
        core = FakeCore(0, [[(2, _sv())]])
        ProcessShell(core, net).start()
        heads = net.pending_heads({0, 1, 2})
        assert [env.dst for env in heads] == [2]

    def test_send_round_stamp(self):
        net = Network(2)
        core = FakeCore(0, [[(1, _sv())]])
        core.set_round(3)
        ProcessShell(core, net).start()
        env = net.pending_heads({1})[0]
        assert env.send_round == 3


class TestCrashSpec:
    def test_crash_before_any_send(self):
        net = Network(3)
        core = FakeCore(0, [[(None, _sv())]])
        shell = ProcessShell(core, net, crash_spec=CrashSpec(0, after_sends=0))
        shell.start()
        assert shell.crashed
        assert net.messages_sent == 0

    def test_mid_broadcast_prefix(self):
        net = Network(5)
        core = FakeCore(0, [[(None, _sv())]])
        shell = ProcessShell(core, net, crash_spec=CrashSpec(0, after_sends=2))
        shell.start()
        assert shell.crashed
        heads = net.pending_heads(set(range(5)))
        assert sorted(env.dst for env in heads) == [1, 2]  # ascending prefix

    def test_crash_in_later_round(self):
        net = Network(3)
        core = FakeCore(0, [[(None, _sv())], [(None, _sv())]])
        shell = ProcessShell(core, net, crash_spec=CrashSpec(1, after_sends=0))
        shell.start()
        assert not shell.crashed
        core.set_round(1)
        shell.receive(_sv(1), src=1)
        assert shell.crashed
        assert shell.crash_fired_round == 1

    def test_crash_fires_when_round_overshoots(self):
        # Spec says round 1 after 5 sends, but the process jumps to round 2:
        # the crash fires at its first round-2 send attempt.
        net = Network(3)
        core = FakeCore(0, [[], [(None, _sv())]])
        shell = ProcessShell(core, net, crash_spec=CrashSpec(1, after_sends=5))
        shell.start()
        core.set_round(2)
        shell.receive(_sv(1), src=1)
        assert shell.crashed

    def test_crashed_shell_ignores_messages(self):
        net = Network(3)
        core = FakeCore(0, [[(None, _sv())], [(None, _sv())]])
        shell = ProcessShell(core, net, crash_spec=CrashSpec(0, 1))
        shell.start()
        assert shell.crashed
        before = len(core.received)
        shell.receive(_sv(1), src=1)
        assert len(core.received) == before


class TestAccounting:
    def test_protocol_sends_use_payload_round(self):
        # An SV echo sent while the core is in round 3 still counts as a
        # round-0 protocol send; a RoundMessage counts for its own tag.
        net = Network(3)
        core = FakeCore(0, [[(None, _sv())], [(None, _rm(2))]])
        shell = ProcessShell(core, net)
        core.set_round(3)
        shell.start()
        shell.receive(_sv(1), src=1)
        assert shell.protocol_sends[0] == 2  # SV broadcast to 2 peers
        assert shell.protocol_sends[2] == 2  # round-2 message to 2 peers
        assert shell.sends_in_round[3] == 4  # all sent while in round 3
