"""Unit tests for the discrete-event simulation driver."""

import numpy as np
import pytest

from repro.core.algorithm_cc import CCProcess
from repro.core.config import CCConfig
from repro.runtime.faults import FaultPlan
from repro.runtime.scheduler import FifoFairScheduler, RandomScheduler
from repro.runtime.simulator import SimulationError, run_simulation


def make_cores(n=5, d=1, f=1, eps=0.5, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(-1, 1, size=(n, d))
    config = CCConfig(
        n=n, f=f, dim=d, eps=eps, input_lower=-1.0, input_upper=1.0
    )
    return [
        CCProcess(pid=i, config=config, input_point=inputs[i])
        for i in range(n)
    ], config


class TestRunSimulation:
    def test_all_decide_fault_free(self):
        cores, _ = make_cores()
        report = run_simulation(cores)
        assert sorted(report.decided) == [0, 1, 2, 3, 4]
        assert not report.crashed
        assert report.messages_delivered <= report.messages_sent

    def test_determinism(self):
        cores_a, _ = make_cores(seed=3)
        cores_b, _ = make_cores(seed=3)
        rep_a = run_simulation(cores_a, scheduler=RandomScheduler(seed=1))
        rep_b = run_simulation(cores_b, scheduler=RandomScheduler(seed=1))
        assert rep_a.delivery_steps == rep_b.delivery_steps
        for a, b in zip(cores_a, cores_b):
            assert a.output.approx_equal(b.output)

    def test_different_schedule_still_decides(self):
        cores, _ = make_cores(seed=4)
        report = run_simulation(cores, scheduler=FifoFairScheduler())
        assert len(report.decided) == 5

    def test_crash_plan_applied(self):
        cores, _ = make_cores()
        plan = FaultPlan.crash_at({4: (1, 2)})
        report = run_simulation(cores, fault_plan=plan)
        assert report.crashed == [4]
        assert sorted(report.decided) == [0, 1, 2, 3]

    def test_max_steps_guard(self):
        cores, _ = make_cores()
        with pytest.raises(SimulationError):
            run_simulation(cores, max_steps=3)

    def test_trace_accounting_propagates(self):
        cores, _ = make_cores()
        plan = FaultPlan.crash_at({4: (0, 1)})
        run_simulation(cores, fault_plan=plan)
        assert cores[4].trace.crash_fired_round == 0
        assert cores[0].trace.crash_fired_round is None
        assert cores[0].trace.sends_in_round[0] > 0

    def test_undelivered_messages_allowed_at_quiescence(self):
        # Messages addressed to crashed processes stay queued; that must
        # not prevent termination.
        cores, _ = make_cores()
        plan = FaultPlan.crash_at({4: (0, 0)})
        report = run_simulation(cores, fault_plan=plan)
        assert report.messages_delivered <= report.messages_sent
