"""Tests for the synchronous lockstep runtime."""

import numpy as np
import pytest

from repro.core.invariants import check_all
from repro.core.matrix import verify_state_evolution
from repro.runtime.faults import FaultPlan
from repro.runtime.lockstep import run_lockstep_consensus
from repro.workloads import gaussian_cluster, uniform_box


class TestLockstep:
    def test_fault_free_run(self):
        inputs = uniform_box(5, 1, seed=0)
        result = run_lockstep_consensus(inputs, 1, 0.3)
        assert sorted(result.report.decided) == [0, 1, 2, 3, 4]
        assert check_all(result.trace).ok

    def test_fully_deterministic(self):
        # No seed anywhere: two runs must be bitwise identical.
        inputs = uniform_box(5, 1, seed=1)
        a = run_lockstep_consensus(inputs, 1, 0.3)
        b = run_lockstep_consensus(inputs, 1, 0.3)
        assert a.report.delivery_steps == b.report.delivery_steps
        for pid in a.outputs:
            assert a.outputs[pid].approx_equal(b.outputs[pid], tol=0.0)

    def test_zero_skew_views(self):
        # In lockstep everyone hears everyone: full views, quorums = all.
        inputs = uniform_box(6, 1, seed=2)
        result = run_lockstep_consensus(inputs, 1, 0.3)
        for proc in result.trace.processes:
            assert len(proc.r_view) == 6

    def test_instant_agreement(self):
        # With identical full views, round-0 states coincide and stay so.
        inputs = uniform_box(6, 1, seed=3)
        result = run_lockstep_consensus(inputs, 1, 0.3)
        from repro.analysis.metrics import convergence_series

        series = convergence_series(result.trace)
        assert all(d < 1e-12 for d in series.disagreement)

    def test_crash_plan_respected(self):
        inputs = uniform_box(6, 1, seed=4)
        plan = FaultPlan.crash_at({5: (1, 2)})
        result = run_lockstep_consensus(inputs, 1, 0.3, fault_plan=plan)
        assert result.report.crashed == [5]
        assert check_all(result.trace).ok

    def test_round0_mid_broadcast_crash(self):
        inputs = uniform_box(6, 1, seed=5)
        plan = FaultPlan.crash_at({5: (0, 1)})
        result = run_lockstep_consensus(inputs, 1, 0.3, fault_plan=plan)
        assert check_all(result.trace).ok

    def test_matrix_theory_on_lockstep_traces(self):
        inputs = gaussian_cluster(5, 2, seed=6)
        result = run_lockstep_consensus(inputs, 1, 0.5)
        assert verify_state_evolution(result.trace).ok

    def test_2d(self):
        inputs = gaussian_cluster(5, 2, seed=7)
        result = run_lockstep_consensus(inputs, 1, 0.4)
        assert check_all(result.trace).ok
