"""Bracha reliable broadcast: consistency, totality, equivocation defense."""

from collections import defaultdict, deque

import pytest

from repro.runtime.broadcast import BrachaBroadcast
from repro.runtime.messages import BBroadcast, BEcho, SVInit


def flood(procs, events, drop=frozenset()):
    """Deliver every outgoing message FIFO until quiescence.

    ``events`` is a list of ``(src, dst_or_None, payload)``; ``None``
    fans out to every process except the sender.  Returns pid ->
    accumulated RB deliveries.
    """
    queue = deque(events)
    delivered = defaultdict(list)
    while queue:
        src, dst, payload = queue.popleft()
        targets = [dst] if dst is not None else [p for p in procs if p != src]
        for target in targets:
            if target in drop or target not in procs:
                continue
            out, dels = procs[target].on_payload(payload, src)
            delivered[target].extend(dels)
            for nxt_dst, nxt_payload in out:
                queue.append((target, nxt_dst, nxt_payload))
    return delivered


def make_procs(n, f):
    return {i: BrachaBroadcast(i, n, f) for i in range(n)}


class TestHappyPath:
    def test_all_processes_deliver_origin_body(self):
        procs = make_procs(4, 1)
        body = (0.25, -1.5)
        out, own = procs[0].broadcast(0, body)
        events = [(0, dst, payload) for dst, payload in out]
        delivered = flood(procs, events)
        delivered[0].extend(own)
        for pid in procs:
            assert delivered[pid] == [(0, 0, body)]

    def test_delivery_is_exactly_once(self):
        procs = make_procs(4, 1)
        out, own = procs[0].broadcast(3, (1.0,))
        # Deliver the whole flood twice: duplicates must not re-deliver.
        events = [(0, dst, payload) for dst, payload in out] * 2
        delivered = flood(procs, events)
        delivered[0].extend(own)
        for pid in procs:
            assert delivered[pid].count((0, 3, (1.0,))) == 1

    def test_single_process_system_delivers_immediately(self):
        rb = BrachaBroadcast(0, 1, 0)
        out, delivered = rb.broadcast(0, (2.0,))
        assert delivered == [(0, 0, (2.0,))]

    def test_concurrent_tags_are_independent(self):
        procs = make_procs(4, 1)
        events = []
        for origin in range(4):
            out, _ = procs[origin].broadcast(0, (float(origin),))
            events.extend((origin, dst, p) for dst, p in out)
        delivered = flood(procs, events)
        for pid in procs:
            bodies = {d for d in delivered[pid] if d[0] != pid}
            assert bodies == {
                (o, 0, (float(o),)) for o in range(4) if o != pid
            }


class TestAdversary:
    def test_equivocating_origin_never_splits_delivery(self):
        # Origin 0 is Byzantine: body A to 1, body B to 2 and 3.  The
        # echo-once rule plus the >(n+f)/2 echo quorum means at most one
        # body can ever gather a quorum — here neither does, and no
        # correct process delivers anything.
        procs = {i: BrachaBroadcast(i, 4, 1) for i in range(1, 4)}
        a = BBroadcast(origin=0, round_index=0, body=(1.0,))
        b = BBroadcast(origin=0, round_index=0, body=(2.0,))
        delivered = flood(procs, [(0, 1, a), (0, 2, b), (0, 3, b)])
        bodies = {d[2] for dels in delivered.values() for d in dels}
        assert len(bodies) <= 1

    def test_equivocation_with_duplicit_echo_still_consistent(self):
        # The Byzantine origin also echoes both bodies itself, trying to
        # push each to quorum.  Echo quorum is 3: body B reaches it
        # (pids 0, 2, 3), body A stalls at 2 — only B can deliver.
        procs = {i: BrachaBroadcast(i, 4, 1) for i in range(1, 4)}
        a = BBroadcast(origin=0, round_index=0, body=(1.0,))
        b = BBroadcast(origin=0, round_index=0, body=(2.0,))
        events = [
            (0, 1, a),
            (0, 2, b),
            (0, 3, b),
            (0, None, BEcho(origin=0, round_index=0, body=(1.0,))),
            (0, None, BEcho(origin=0, round_index=0, body=(2.0,))),
        ]
        delivered = flood(procs, events)
        bodies = {d[2] for dels in delivered.values() for d in dels}
        assert bodies <= {(2.0,)}

    def test_totality_when_origin_goes_silent(self):
        # Origin crashes right after its initial fan-out: the correct
        # processes' echoes alone reach quorum and everyone delivers.
        procs = {i: BrachaBroadcast(i, 4, 1) for i in range(1, 4)}
        payload = BBroadcast(origin=0, round_index=0, body=(7.0,))
        delivered = flood(
            procs, [(0, pid, payload) for pid in (1, 2, 3)], drop={0}
        )
        for pid in (1, 2, 3):
            assert delivered[pid] == [(0, 0, (7.0,))]

    def test_impersonated_broadcast_ignored(self):
        # pid 2 relays a BBroadcast claiming origin 0: only the origin
        # itself may open its instance.
        rb = BrachaBroadcast(1, 4, 1)
        fake = BBroadcast(origin=0, round_index=0, body=(9.0,))
        out, delivered = rb.on_payload(fake, 2)
        assert out == [] and delivered == []

    def test_second_body_from_origin_not_echoed(self):
        rb = BrachaBroadcast(1, 4, 1)
        first = BBroadcast(origin=0, round_index=0, body=(1.0,))
        second = BBroadcast(origin=0, round_index=0, body=(2.0,))
        out1, _ = rb.on_payload(first, 0)
        assert any(isinstance(p, BEcho) for _, p in out1)
        out2, _ = rb.on_payload(second, 0)
        assert out2 == []


class TestInterface:
    def test_non_rb_payload_rejected(self):
        from repro.runtime.messages import InputTuple, freeze_point

        rb = BrachaBroadcast(0, 4, 1)
        bogus = SVInit(
            entry=InputTuple(value=freeze_point([0.0]), sender=0)
        )
        with pytest.raises(TypeError, match="reliable-broadcast"):
            rb.on_payload(bogus, 1)

    def test_quorum_arithmetic(self):
        rb = BrachaBroadcast(0, 7, 2)
        assert rb.echo_quorum == 5  # ceil((7+2+1)/2)
        assert rb.ready_amplify == 3
        assert rb.deliver_quorum == 5

    def test_delivered_count(self):
        procs = make_procs(4, 1)
        out, own = procs[0].broadcast(0, (1.0,))
        flood(procs, [(0, dst, p) for dst, p in out])
        assert procs[1].delivered_count() == 1
