"""Tests for the asyncio runtime — same protocols, live coroutines."""

import numpy as np
import pytest

from repro.core.invariants import check_agreement, check_validity
from repro.runtime.asyncio_runtime import run_asyncio_consensus
from repro.runtime.faults import FaultPlan


class TestAsyncioConsensus:
    def test_fault_free_run_decides(self):
        rng = np.random.default_rng(0)
        inputs = rng.uniform(-1, 1, size=(5, 1))
        result = run_asyncio_consensus(inputs, 1, 0.2, seed=1)
        assert sorted(result.report.decided) == [0, 1, 2, 3, 4]
        assert check_agreement(result.trace).ok
        assert check_validity(result.trace).ok

    def test_crash_mid_broadcast(self):
        rng = np.random.default_rng(1)
        inputs = rng.uniform(-1, 1, size=(5, 1))
        plan = FaultPlan.crash_at({4: (0, 2)})
        result = run_asyncio_consensus(inputs, 1, 0.2, fault_plan=plan, seed=2)
        assert 4 in result.report.crashed
        assert sorted(result.report.decided) == [0, 1, 2, 3]
        assert check_validity(result.trace).ok

    def test_2d_run(self):
        rng = np.random.default_rng(2)
        inputs = rng.uniform(-1, 1, size=(5, 1))
        result = run_asyncio_consensus(inputs, 1, 0.3, seed=3, max_delay=0.0005)
        agreement = check_agreement(result.trace)
        assert agreement.disagreement < result.config.eps

    def test_zero_delay_still_works(self):
        rng = np.random.default_rng(3)
        inputs = rng.uniform(-1, 1, size=(5, 1))
        result = run_asyncio_consensus(inputs, 1, 0.5, seed=4, max_delay=0.0)
        assert len(result.report.decided) == 5
