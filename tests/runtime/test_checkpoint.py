"""Checkpoint stores: isolation, atomic publication, corruption -> amnesia."""

import json
import os

import pytest

from repro.geometry.cache import PERF
from repro.runtime.checkpoint import (
    SCHEMA_VERSION,
    CheckpointStore,
    DiskCheckpointStore,
    checkpoint_digest,
)


class TestInMemoryStore:
    def test_latest_snapshot_wins(self):
        store = CheckpointStore()
        store.save(3, {"round": 0})
        store.save(3, {"round": 1})
        assert store.load(3) == {"round": 1}

    def test_missing_key_is_none(self):
        assert CheckpointStore().load(9) is None

    def test_load_is_decoupled_from_saved_object(self):
        # A restored process must never alias live pre-crash state.
        store = CheckpointStore()
        payload = {"h": [[0.0, 1.0]]}
        store.save(0, payload)
        restored = store.load(0)
        assert restored == payload
        restored["h"].append([2.0, 3.0])
        assert store.load(0) == payload

    def test_save_rejects_non_json_payloads(self):
        with pytest.raises(TypeError):
            CheckpointStore().save(0, {"bad": object()})

    def test_counters_move(self):
        saves0, restores0 = PERF.checkpoint_saves, PERF.checkpoint_restores
        store = CheckpointStore()
        store.save(1, {"x": 1})
        store.load(1)
        assert PERF.checkpoint_saves == saves0 + 1
        assert PERF.checkpoint_restores == restores0 + 1


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(2, {"round": 4, "done": False})
        assert store.load(2) == {"round": 4, "done": False}
        # A fresh store instance over the same directory sees it too.
        assert DiskCheckpointStore(tmp_path).load(2) == {
            "round": 4,
            "done": False,
        }

    def test_entry_is_checksummed_and_versioned(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save("transport", {"clock": 7})
        entry = json.loads((tmp_path / "ckpt-transport.json").read_text())
        assert entry["format"] == SCHEMA_VERSION
        assert entry["sha256"] == checkpoint_digest({"clock": 7})

    def test_no_tempfile_debris_after_save(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        for i in range(5):
            store.save(0, {"round": i})
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt-0.json"]

    def test_truncated_entry_is_amnesia(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"round": 3})
        path = tmp_path / "ckpt-0.json"
        path.write_text(path.read_text()[:10])
        corruptions0 = PERF.checkpoint_corruptions
        assert store.load(0) is None
        assert PERF.checkpoint_corruptions == corruptions0 + 1

    def test_flipped_payload_fails_checksum(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"round": 3})
        path = tmp_path / "ckpt-0.json"
        entry = json.loads(path.read_text())
        entry["data"]["round"] = 4  # tampered payload, stale checksum
        path.write_text(json.dumps(entry))
        assert store.load(0) is None

    def test_unknown_schema_version_is_amnesia(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"round": 3})
        path = tmp_path / "ckpt-0.json"
        entry = json.loads(path.read_text())
        entry["format"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        corruptions0 = PERF.checkpoint_corruptions
        assert store.load(0) is None
        assert PERF.checkpoint_corruptions == corruptions0 + 1

    def test_missing_file_is_plain_none_not_corruption(self, tmp_path):
        corruptions0 = PERF.checkpoint_corruptions
        assert DiskCheckpointStore(tmp_path).load(42) is None
        assert PERF.checkpoint_corruptions == corruptions0

    def test_keys_and_clear(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {})
        store.save("transport", {})
        assert store.keys() == ["0", "transport"]
        store.clear()
        assert store.keys() == []
        assert store.load(0) is None

    def test_failed_write_leaves_previous_entry_intact(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"round": 1})
        with pytest.raises(TypeError):
            store.save(0, {"bad": os})  # unserialisable payload
        assert store.load(0) == {"round": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt-0.json"]
