"""Checkpoint stores: isolation, atomic publication, corruption -> amnesia."""

import json
import os

import pytest

from repro.geometry.cache import PERF
from repro.runtime.checkpoint import (
    SCHEMA_VERSION,
    CheckpointStore,
    DiskCheckpointStore,
    checkpoint_digest,
)


class TestInMemoryStore:
    def test_latest_snapshot_wins(self):
        store = CheckpointStore()
        store.save(3, {"round": 0})
        store.save(3, {"round": 1})
        assert store.load(3) == {"round": 1}

    def test_missing_key_is_none(self):
        assert CheckpointStore().load(9) is None

    def test_load_is_decoupled_from_saved_object(self):
        # A restored process must never alias live pre-crash state.
        store = CheckpointStore()
        payload = {"h": [[0.0, 1.0]]}
        store.save(0, payload)
        restored = store.load(0)
        assert restored == payload
        restored["h"].append([2.0, 3.0])
        assert store.load(0) == payload

    def test_save_rejects_non_json_payloads(self):
        with pytest.raises(TypeError):
            CheckpointStore().save(0, {"bad": object()})

    def test_counters_move(self):
        saves0, restores0 = PERF.checkpoint_saves, PERF.checkpoint_restores
        store = CheckpointStore()
        store.save(1, {"x": 1})
        store.load(1)
        assert PERF.checkpoint_saves == saves0 + 1
        assert PERF.checkpoint_restores == restores0 + 1


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(2, {"round": 4, "done": False})
        assert store.load(2) == {"round": 4, "done": False}
        # A fresh store instance over the same directory sees it too.
        assert DiskCheckpointStore(tmp_path).load(2) == {
            "round": 4,
            "done": False,
        }

    def test_entry_is_checksummed_and_versioned(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save("transport", {"clock": 7})
        entry = json.loads((tmp_path / "ckpt-transport.json").read_text())
        assert entry["format"] == SCHEMA_VERSION
        assert entry["sha256"] == checkpoint_digest({"clock": 7})

    def test_no_tempfile_debris_after_save(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        for i in range(5):
            store.save(0, {"round": i})
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt-0.json"]

    def test_truncated_entry_is_amnesia(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"round": 3})
        path = tmp_path / "ckpt-0.json"
        path.write_text(path.read_text()[:10])
        corruptions0 = PERF.checkpoint_corruptions
        assert store.load(0) is None
        assert PERF.checkpoint_corruptions == corruptions0 + 1

    def test_flipped_payload_fails_checksum(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"round": 3})
        path = tmp_path / "ckpt-0.json"
        entry = json.loads(path.read_text())
        entry["data"]["round"] = 4  # tampered payload, stale checksum
        path.write_text(json.dumps(entry))
        assert store.load(0) is None

    def test_unknown_schema_version_is_amnesia(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"round": 3})
        path = tmp_path / "ckpt-0.json"
        entry = json.loads(path.read_text())
        entry["format"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        corruptions0 = PERF.checkpoint_corruptions
        assert store.load(0) is None
        assert PERF.checkpoint_corruptions == corruptions0 + 1

    def test_missing_file_is_plain_none_not_corruption(self, tmp_path):
        corruptions0 = PERF.checkpoint_corruptions
        assert DiskCheckpointStore(tmp_path).load(42) is None
        assert PERF.checkpoint_corruptions == corruptions0

    def test_keys_and_clear(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {})
        store.save("transport", {})
        assert store.keys() == ["0", "transport"]
        store.clear()
        assert store.keys() == []
        assert store.load(0) is None

    def test_failed_write_leaves_previous_entry_intact(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"round": 1})
        with pytest.raises(TypeError):
            store.save(0, {"bad": os})  # unserialisable payload
        assert store.load(0) == {"round": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt-0.json"]


class TestTamperDegradesToAmnesia:
    """Disk damage between crash and revival must yield amnesia, counted.

    The degrade path has two halves — the store turning damage into
    ``None`` (plus a ``checkpoint_corruptions`` tick) and the
    RecoveryManager turning ``None`` into an amnesia restart.  These
    tests pin both halves together, end to end through a real run.
    """

    def test_stale_version_with_recomputed_checksum_is_still_amnesia(
        self, tmp_path
    ):
        # The strongest stale-version case: the entry is internally
        # consistent (digest recomputed over the tampered payload), so
        # only the format gate can reject it.
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"round": 3})
        path = tmp_path / "ckpt-0.json"
        entry = json.loads(path.read_text())
        entry["format"] = SCHEMA_VERSION + 1
        entry["data"]["round"] = 99
        entry["sha256"] = checkpoint_digest(entry["data"])
        path.write_text(json.dumps(entry))
        corruptions0 = PERF.checkpoint_corruptions
        assert store.load(0) is None
        assert PERF.checkpoint_corruptions == corruptions0 + 1

    def test_empty_file_partial_write_is_amnesia(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"round": 3})
        (tmp_path / "ckpt-0.json").write_text("")
        corruptions0 = PERF.checkpoint_corruptions
        assert store.load(0) is None
        assert PERF.checkpoint_corruptions == corruptions0 + 1

    def test_torn_write_degrades_durable_run_to_amnesia(self, tmp_path):
        # End to end: a store whose files are torn after every save (the
        # power-loss-mid-write model).  The durable plan must complete
        # the run with the recoverer restarted amnesiac, never crash on
        # the damaged file, and count each rejected load.
        import numpy as np

        from repro.core.runner import run_convex_hull_consensus
        from repro.runtime.faults import AMNESIA, DURABLE, FaultPlan

        class TornWriteStore(DiskCheckpointStore):
            def save(self, key, data):
                super().save(key, data)
                path = self._path(key)
                path.write_text(path.read_text()[: len(path.read_text()) // 2])

        rng = np.random.default_rng(11)
        inputs = rng.uniform(-1.0, 1.0, size=(5, 1))
        plan = FaultPlan.crash_recover({4: (1, 1, 8)}, durability=DURABLE)
        corruptions0 = PERF.checkpoint_corruptions
        result = run_convex_hull_consensus(
            inputs,
            1,
            0.2,
            fault_plan=plan,
            seed=3,
            input_bounds=(-1.0, 1.0),
            checkpoint_store=TornWriteStore(tmp_path),
        )
        proc = result.trace.processes[4]
        assert proc.recovery_durability == AMNESIA
        assert proc.restarts == 1
        assert PERF.checkpoint_corruptions > corruptions0
        assert 4 in result.report.recovered

    def test_stale_version_degrades_durable_run_to_amnesia(self, tmp_path):
        # Same end-to-end path, but the damage is a checksum-valid entry
        # from a future schema version (downgrade-after-upgrade model).
        import numpy as np

        from repro.core.runner import run_convex_hull_consensus
        from repro.runtime.faults import AMNESIA, DURABLE, FaultPlan

        class FutureFormatStore(DiskCheckpointStore):
            def save(self, key, data):
                super().save(key, data)
                path = self._path(key)
                entry = json.loads(path.read_text())
                entry["format"] = SCHEMA_VERSION + 1
                entry["sha256"] = checkpoint_digest(entry["data"])
                path.write_text(json.dumps(entry, sort_keys=True))

        rng = np.random.default_rng(11)
        inputs = rng.uniform(-1.0, 1.0, size=(5, 1))
        plan = FaultPlan.crash_recover({4: (1, 1, 8)}, durability=DURABLE)
        corruptions0 = PERF.checkpoint_corruptions
        result = run_convex_hull_consensus(
            inputs,
            1,
            0.2,
            fault_plan=plan,
            seed=3,
            input_bounds=(-1.0, 1.0),
            checkpoint_store=FutureFormatStore(tmp_path),
        )
        proc = result.trace.processes[4]
        assert proc.recovery_durability == AMNESIA
        assert proc.restarts == 1
        assert PERF.checkpoint_corruptions > corruptions0
