"""Unit tests for the stable-vector engine (state machine level)."""

import pytest

from repro.runtime.messages import InputTuple, SVView
from repro.runtime.stable_vector import StableVectorEngine


def make_engines(n, f):
    return [
        StableVectorEngine(
            pid=i, n=n, f=f, entry=InputTuple(value=(float(i),), sender=i)
        )
        for i in range(n)
    ]


def drive_to_completion(engines):
    """Synchronously flood all broadcasts until quiescence."""
    pending = []
    for engine in engines:
        for payload in engine.start():
            pending.append((engine.pid, payload))
    guard = 0
    while pending:
        guard += 1
        assert guard < 100_000, "stable vector did not quiesce"
        src, payload = pending.pop(0)
        for engine in engines:
            if engine.pid == src:
                continue
            if isinstance(payload, SVView):
                out = engine.on_view(payload, src)
            else:
                out = engine.on_init(payload, src)
            for echo in out:
                pending.append((engine.pid, echo))


class TestBasics:
    def test_requires_quorum_size(self):
        with pytest.raises(ValueError):
            StableVectorEngine(pid=0, n=2, f=1, entry=InputTuple((0.0,), 0))

    def test_single_process(self):
        engine = StableVectorEngine(pid=0, n=1, f=0, entry=InputTuple((0.0,), 0))
        engine.start()
        assert engine.result is not None
        assert len(engine.result) == 1

    def test_all_complete_without_faults(self):
        engines = make_engines(4, 1)
        drive_to_completion(engines)
        for engine in engines:
            assert engine.result is not None
            assert len(engine.result) >= 3  # n - f

    def test_full_view_when_everyone_participates(self):
        engines = make_engines(5, 1)
        drive_to_completion(engines)
        # Synchronous flooding delivers everything: all views are complete.
        for engine in engines:
            assert len(engine.result) == 5

    def test_result_set_once(self):
        engines = make_engines(4, 1)
        drive_to_completion(engines)
        first = engines[0].result
        # More traffic must not change the returned result object.
        engines[0].on_view(SVView(entries=first), src=1)
        assert engines[0].result == first


class TestPartialParticipation:
    def test_crashed_initiator_before_sending(self):
        # Engine 3 never starts (crashed before round 0): others must
        # still stabilise on an (n-f)-sized view.
        engines = make_engines(4, 1)
        live = engines[:3]
        pending = []
        for engine in live:
            for payload in engine.start():
                pending.append((engine.pid, payload))
        guard = 0
        while pending:
            guard += 1
            assert guard < 100_000
            src, payload = pending.pop(0)
            for engine in live:
                if engine.pid == src:
                    continue
                out = (
                    engine.on_view(payload, src)
                    if isinstance(payload, SVView)
                    else engine.on_init(payload, src)
                )
                pending.extend((engine.pid, echo) for echo in out)
        for engine in live:
            assert engine.result is not None
            assert len(engine.result) == 3

    def test_view_monotonicity(self):
        engine = StableVectorEngine(pid=0, n=4, f=1, entry=InputTuple((0.0,), 0))
        engine.start()
        sizes = [engine.view_size]
        for j in range(1, 4):
            entries = frozenset(
                InputTuple((float(k),), k) for k in range(j + 1)
            )
            engine.on_view(SVView(entries=entries), src=j)
            sizes.append(engine.view_size)
        assert sizes == sorted(sizes)

    def test_no_premature_stability(self):
        # With only its own entry the engine must not return.
        engine = StableVectorEngine(pid=0, n=4, f=1, entry=InputTuple((0.0,), 0))
        engine.start()
        assert engine.result is None
