"""Unit tests for the standalone channel contract."""

import pytest

from repro.runtime.channel import Channel, ChannelError
from repro.runtime.messages import InputTuple, SVInit


def _payload(i=0):
    return SVInit(entry=InputTuple(value=(float(i),), sender=0))


class TestChannel:
    def test_enqueue_assigns_sequential_seqs(self):
        ch = Channel(src=0, dst=1)
        envs = [ch.enqueue(_payload(i), send_round=0) for i in range(4)]
        assert [e.seq for e in envs] == [0, 1, 2, 3]

    def test_depth_and_head(self):
        ch = Channel(src=0, dst=1)
        assert not ch.has_pending
        assert ch.depth == 0
        ch.enqueue(_payload(), send_round=0)
        ch.enqueue(_payload(1), send_round=0)
        assert ch.depth == 2
        assert ch.head.seq == 0

    def test_fifo_delivery(self):
        ch = Channel(src=0, dst=1)
        for i in range(3):
            ch.enqueue(_payload(i), send_round=i)
        delivered = [ch.deliver_head().seq for _ in range(3)]
        assert delivered == [0, 1, 2]
        assert not ch.has_pending

    def test_exactly_once_guard(self):
        ch = Channel(src=0, dst=1)
        ch.enqueue(_payload(), send_round=0)
        ch.deliver_head()
        # Forge an out-of-order envelope into the queue: must be caught.
        ch._queue.appendleft(
            ch.enqueue(_payload(9), send_round=0)
        )
        with pytest.raises(ChannelError):
            ch.deliver_head()
            ch.deliver_head()

    def test_send_round_recorded(self):
        ch = Channel(src=2, dst=3)
        env = ch.enqueue(_payload(), send_round=5)
        assert env.send_round == 5
        assert env.src == 2 and env.dst == 3
