"""Unit tests for the standalone channel contract."""

import pytest

from repro.runtime.channel import Channel, ChannelError
from repro.runtime.messages import InputTuple, SVInit


def _payload(i=0):
    return SVInit(entry=InputTuple(value=(float(i),), sender=0))


class TestChannel:
    def test_enqueue_assigns_sequential_seqs(self):
        ch = Channel(src=0, dst=1)
        envs = [ch.enqueue(_payload(i), send_round=0) for i in range(4)]
        assert [e.seq for e in envs] == [0, 1, 2, 3]

    def test_depth_and_head(self):
        ch = Channel(src=0, dst=1)
        assert not ch.has_pending
        assert ch.depth == 0
        ch.enqueue(_payload(), send_round=0)
        ch.enqueue(_payload(1), send_round=0)
        assert ch.depth == 2
        assert ch.head.seq == 0

    def test_fifo_delivery(self):
        ch = Channel(src=0, dst=1)
        for i in range(3):
            ch.enqueue(_payload(i), send_round=i)
        delivered = [ch.deliver_head().seq for _ in range(3)]
        assert delivered == [0, 1, 2]
        assert not ch.has_pending

    def test_exactly_once_guard(self):
        ch = Channel(src=0, dst=1)
        ch.enqueue(_payload(), send_round=0)
        ch.deliver_head()
        # Forge an out-of-order envelope into the queue: must be caught.
        ch._queue.appendleft(
            ch.enqueue(_payload(9), send_round=0)
        )
        with pytest.raises(ChannelError):
            ch.deliver_head()
            ch.deliver_head()

    def test_send_round_recorded(self):
        ch = Channel(src=2, dst=3)
        env = ch.enqueue(_payload(), send_round=5)
        assert env.send_round == 5
        assert env.src == 2 and env.dst == 3

    def test_sequence_violation_leaves_channel_inspectable(self):
        # Peek-verify-pop: a failed delivery must not mutate the queue,
        # so post-mortem tooling sees the offending head in place.
        ch = Channel(src=0, dst=1)
        ch.enqueue(_payload(0), send_round=0)
        forged = ch.enqueue(_payload(9), send_round=0)  # seq 1
        ch._queue.remove(forged)
        ch._queue.appendleft(forged)  # out-of-order head
        depth_before = ch.depth
        with pytest.raises(ChannelError):
            ch.deliver_head()
        assert ch.depth == depth_before
        assert ch.head is forged
        assert ch._next_deliver_seq == 0
        # Restoring FIFO order makes the channel deliverable again.
        ch._queue.remove(forged)
        ch._queue.append(forged)
        assert ch.deliver_head().seq == 0
        assert ch.deliver_head() is forged

    def test_non_head_delivery_raises_without_popping(self):
        ch = Channel(src=0, dst=1)
        ch.enqueue(_payload(0), send_round=0)
        ch.deliver_head()
        ch.enqueue(_payload(1), send_round=0)
        ch.enqueue(_payload(2), send_round=0)
        # Skip ahead: pretend seq 1 was already consumed.
        ch._next_deliver_seq = 2
        with pytest.raises(ChannelError):
            ch.deliver_head()
        assert ch.depth == 2 and ch.head.seq == 1
