"""Unit tests for message types and freezing helpers."""

import numpy as np
import pytest

from repro.runtime.messages import (
    Envelope,
    InputTuple,
    RoundMessage,
    SVInit,
    SVView,
    freeze_point,
    freeze_vertices,
)


class TestFreezing:
    def test_freeze_point(self):
        assert freeze_point(np.array([1.0, 2.5])) == (1.0, 2.5)

    def test_freeze_point_from_list(self):
        assert freeze_point([3]) == (3.0,)

    def test_freeze_vertices(self):
        out = freeze_vertices(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert out == ((1.0, 2.0), (3.0, 4.0))

    def test_freeze_vertices_1d_input(self):
        assert freeze_vertices(np.array([1.0, 2.0])) == ((1.0, 2.0),)

    def test_frozen_values_hashable(self):
        entry = InputTuple(value=freeze_point([1.0, 2.0]), sender=3)
        assert hash(entry) is not None
        assert entry in {entry}


class TestInputTuple:
    def test_ordering_by_sender(self):
        a = InputTuple(value=(1.0,), sender=0)
        b = InputTuple(value=(0.0,), sender=1)
        assert a < b

    def test_equality(self):
        a = InputTuple(value=(1.0,), sender=0)
        b = InputTuple(value=(1.0,), sender=0)
        assert a == b

    def test_distinct_senders_distinct_tuples(self):
        a = InputTuple(value=(1.0,), sender=0)
        b = InputTuple(value=(1.0,), sender=1)
        assert a != b
        assert len({a, b}) == 2


class TestPayloads:
    def test_svview_holds_frozenset(self):
        entries = frozenset(
            {InputTuple(value=(0.0,), sender=0), InputTuple(value=(1.0,), sender=1)}
        )
        view = SVView(entries=entries)
        assert len(view.entries) == 2

    def test_round_message_fields(self):
        msg = RoundMessage(vertices=((0.0, 0.0), (1.0, 1.0)), sender=2, round_index=3)
        assert msg.round_index == 3
        assert len(msg.vertices) == 2

    def test_envelope_identity_semantics(self):
        payload = SVInit(entry=InputTuple(value=(0.0,), sender=0))
        e1 = Envelope(src=0, dst=1, seq=0, send_round=0, payload=payload)
        e2 = Envelope(src=0, dst=1, seq=0, send_round=0, payload=payload)
        # payload excluded from equality; envelopes compare by routing info
        assert e1 == e2
