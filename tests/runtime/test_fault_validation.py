"""``FaultPlan.validate``: malformed plans fail fast, not deep in a run."""

import numpy as np
import pytest

from repro.core.runner import run_convex_hull_consensus
from repro.runtime.faults import CrashSpec, FaultPlan


class TestConstructionChecks:
    def test_crash_for_non_faulty_process_rejected(self):
        with pytest.raises(ValueError, match="non-faulty"):
            FaultPlan(faulty=frozenset({1}), crashes={2: CrashSpec(0, 0)})

    def test_incorrect_inputs_must_be_faulty(self):
        with pytest.raises(ValueError, match="non-faulty"):
            FaultPlan(faulty=frozenset({1}), incorrect_inputs=frozenset({3}))

    def test_valid_plan_constructs(self):
        plan = FaultPlan(faulty=frozenset({1}), crashes={1: CrashSpec(2, 3)})
        assert plan.validate() is plan


class TestRangeChecks:
    def test_pid_out_of_range_detected_with_n(self):
        plan = FaultPlan(faulty=frozenset({9}))
        with pytest.raises(ValueError, match=r"faulty pids \[9\]"):
            plan.validate(5)
        # Without n the plan is internally consistent.
        assert plan.validate() is plan

    def test_negative_pid_detected(self):
        plan = FaultPlan(faulty=frozenset({-1}))
        with pytest.raises(ValueError, match="outside the system"):
            plan.validate(5)

    def test_in_range_plan_passes(self):
        plan = FaultPlan.crash_at({4: (0, 1)})
        assert plan.validate(5) is plan


class TestRevalidation:
    def test_mutated_crash_dict_caught_on_revalidation(self):
        # ``crashes`` is a mutable dict; a plan corrupted after
        # construction must still be caught when the simulator
        # re-validates.
        plan = FaultPlan(faulty=frozenset({1}), crashes={1: CrashSpec(0, 0)})
        plan.crashes[3] = CrashSpec(0, 0)
        with pytest.raises(ValueError, match="non-faulty"):
            plan.validate()

    def test_non_crashspec_entry_caught(self):
        plan = FaultPlan(faulty=frozenset({1}), crashes={1: CrashSpec(0, 0)})
        plan.crashes[1] = (0, 0)  # tuple instead of CrashSpec
        with pytest.raises(ValueError, match="expected CrashSpec"):
            plan.validate()


class TestSimulatorIntegration:
    def test_run_rejects_out_of_range_plan(self):
        rng = np.random.default_rng(0)
        inputs = rng.uniform(-1.0, 1.0, size=(5, 1))
        plan = FaultPlan(faulty=frozenset({9}))
        with pytest.raises(ValueError, match="outside the system"):
            run_convex_hull_consensus(
                inputs, 1, 0.2, fault_plan=plan, enforce_resilience=False
            )


class TestRecoveryChecks:
    def test_recovery_without_crash_rejected(self):
        from repro.runtime.faults import RecoverySpec

        with pytest.raises(ValueError, match="never crash"):
            FaultPlan(
                faulty=frozenset({1}),
                crashes={1: CrashSpec(0, 0)},
                recoveries={2: RecoverySpec(recover_at=5)},
            )

    def test_non_recoveryspec_entry_caught(self):
        plan = FaultPlan.crash_recover({1: (0, 0, 5)})
        plan.recoveries[1] = (5, "durable")  # tuple instead of RecoverySpec
        with pytest.raises(ValueError, match="expected RecoverySpec"):
            plan.validate()

    def test_recover_at_must_be_positive(self):
        from repro.runtime.faults import RecoverySpec

        with pytest.raises(ValueError, match="recover_at"):
            RecoverySpec(recover_at=0)

    def test_unknown_durability_rejected(self):
        from repro.runtime.faults import RecoverySpec

        with pytest.raises(ValueError, match="durability"):
            RecoverySpec(recover_at=3, durability="forgetful")

    def test_crash_recover_constructor(self):
        from repro.runtime.faults import AMNESIA

        plan = FaultPlan.crash_recover(
            {2: (0, 1, 4), 3: (1, 0, 9)}, durability=AMNESIA
        )
        assert plan.validate(5) is plan
        assert plan.recovery_spec(2).recover_at == 4
        assert plan.recovery_spec(3).durability == AMNESIA
        assert not plan.has_durable_recovery

    def test_has_durable_recovery(self):
        plan = FaultPlan.crash_recover({2: (0, 1, 4)})
        assert plan.has_durable_recovery
