"""``FaultPlan.validate``: malformed plans fail fast, not deep in a run."""

import numpy as np
import pytest

from repro.core.runner import run_convex_hull_consensus
from repro.runtime.faults import ByzantineSpec, CrashSpec, FaultPlan


class TestConstructionChecks:
    def test_crash_for_non_faulty_process_rejected(self):
        with pytest.raises(ValueError, match="non-faulty"):
            FaultPlan(faulty=frozenset({1}), crashes={2: CrashSpec(0, 0)})

    def test_incorrect_inputs_must_be_faulty(self):
        with pytest.raises(ValueError, match="non-faulty"):
            FaultPlan(faulty=frozenset({1}), incorrect_inputs=frozenset({3}))

    def test_valid_plan_constructs(self):
        plan = FaultPlan(faulty=frozenset({1}), crashes={1: CrashSpec(2, 3)})
        assert plan.validate() is plan


class TestRangeChecks:
    def test_pid_out_of_range_detected_with_n(self):
        plan = FaultPlan(faulty=frozenset({9}))
        with pytest.raises(ValueError, match=r"faulty pids \[9\]"):
            plan.validate(5)
        # Without n the plan is internally consistent.
        assert plan.validate() is plan

    def test_negative_pid_detected(self):
        plan = FaultPlan(faulty=frozenset({-1}))
        with pytest.raises(ValueError, match="outside the system"):
            plan.validate(5)

    def test_in_range_plan_passes(self):
        plan = FaultPlan.crash_at({4: (0, 1)})
        assert plan.validate(5) is plan


class TestRevalidation:
    def test_mutated_crash_dict_caught_on_revalidation(self):
        # ``crashes`` is a mutable dict; a plan corrupted after
        # construction must still be caught when the simulator
        # re-validates.
        plan = FaultPlan(faulty=frozenset({1}), crashes={1: CrashSpec(0, 0)})
        plan.crashes[3] = CrashSpec(0, 0)
        with pytest.raises(ValueError, match="non-faulty"):
            plan.validate()

    def test_non_crashspec_entry_caught(self):
        plan = FaultPlan(faulty=frozenset({1}), crashes={1: CrashSpec(0, 0)})
        plan.crashes[1] = (0, 0)  # tuple instead of CrashSpec
        with pytest.raises(ValueError, match="expected CrashSpec"):
            plan.validate()


class TestSimulatorIntegration:
    def test_run_rejects_out_of_range_plan(self):
        rng = np.random.default_rng(0)
        inputs = rng.uniform(-1.0, 1.0, size=(5, 1))
        plan = FaultPlan(faulty=frozenset({9}))
        with pytest.raises(ValueError, match="outside the system"):
            run_convex_hull_consensus(
                inputs, 1, 0.2, fault_plan=plan, enforce_resilience=False
            )


class TestRecoveryChecks:
    def test_recovery_without_crash_rejected(self):
        from repro.runtime.faults import RecoverySpec

        with pytest.raises(ValueError, match="never crash"):
            FaultPlan(
                faulty=frozenset({1}),
                crashes={1: CrashSpec(0, 0)},
                recoveries={2: RecoverySpec(recover_at=5)},
            )

    def test_non_recoveryspec_entry_caught(self):
        plan = FaultPlan.crash_recover({1: (0, 0, 5)})
        plan.recoveries[1] = (5, "durable")  # tuple instead of RecoverySpec
        with pytest.raises(ValueError, match="expected RecoverySpec"):
            plan.validate()

    def test_recover_at_must_be_positive(self):
        from repro.runtime.faults import RecoverySpec

        with pytest.raises(ValueError, match="recover_at"):
            RecoverySpec(recover_at=0)

    def test_unknown_durability_rejected(self):
        from repro.runtime.faults import RecoverySpec

        with pytest.raises(ValueError, match="durability"):
            RecoverySpec(recover_at=3, durability="forgetful")

    def test_crash_recover_constructor(self):
        from repro.runtime.faults import AMNESIA

        plan = FaultPlan.crash_recover(
            {2: (0, 1, 4), 3: (1, 0, 9)}, durability=AMNESIA
        )
        assert plan.validate(5) is plan
        assert plan.recovery_spec(2).recover_at == 4
        assert plan.recovery_spec(3).durability == AMNESIA
        assert not plan.has_durable_recovery

    def test_has_durable_recovery(self):
        plan = FaultPlan.crash_recover({2: (0, 1, 4)})
        assert plan.has_durable_recovery


class TestByzantineChecks:
    """Coherence of the Byzantine fault axis (crash/Byzantine/bound)."""

    def test_byzantine_for_non_faulty_process_rejected(self):
        with pytest.raises(ValueError, match="non-faulty"):
            FaultPlan(faulty=frozenset({1}), byzantine={2: ByzantineSpec()})

    def test_both_crashed_and_byzantine_rejected(self):
        with pytest.raises(ValueError, match="both crashed and Byzantine"):
            FaultPlan(
                faulty=frozenset({1}),
                crashes={1: CrashSpec(0, 0)},
                byzantine={1: ByzantineSpec()},
            )

    def test_crash_and_byzantine_on_distinct_pids_allowed(self):
        plan = FaultPlan(
            faulty=frozenset({1, 2}),
            crashes={1: CrashSpec(0, 0)},
            byzantine={2: ByzantineSpec()},
        )
        assert plan.validate(5) is plan

    def test_non_byzantinespec_entry_caught(self):
        plan = FaultPlan.byzantine_at([1])
        plan.byzantine[1] = "equivocate"  # string instead of ByzantineSpec
        with pytest.raises(ValueError, match="expected ByzantineSpec"):
            plan.validate()

    def test_count_above_f_rejected_only_with_f(self):
        plan = FaultPlan.byzantine_at([0, 1])
        with pytest.raises(ValueError, match="exceed the configured"):
            plan.validate(7, f=1)
        # Without f the count is deliberately unchecked — beyond-bound
        # probes construct exactly this plan on purpose.
        assert plan.validate(7) is plan

    def test_below_byzantine_bound_rejected(self):
        plan = FaultPlan.byzantine_at([0])
        # d=1, f=1: max(3f+1, (d+2)f+1) = 4.
        with pytest.raises(ValueError, match="Byzantine resilience bound"):
            plan.validate(3, dim=1, f=1)
        assert plan.validate(4, dim=1, f=1) is plan

    def test_count_checked_without_dim(self):
        # The crash algorithm under a Byzantine plan (the bound-gap
        # probe) gets the count check but not the BCC bound check.
        plan = FaultPlan.byzantine_at([0, 1])
        with pytest.raises(ValueError, match="exceed the configured"):
            plan.validate(4, f=1)

    def test_empty_behaviors_rejected(self):
        with pytest.raises(ValueError, match="at least one behavior"):
            ByzantineSpec(behaviors=())

    def test_unknown_behavior_rejected(self):
        with pytest.raises(ValueError, match="unknown Byzantine behaviors"):
            ByzantineSpec(behaviors=("lie",))

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            ByzantineSpec(rate=0.0)
        with pytest.raises(ValueError, match="rate"):
            ByzantineSpec(rate=1.5)

    def test_spec_json_roundtrip(self):
        spec = ByzantineSpec(behaviors=("forge",), rate=0.5, magnitude=3.0, seed=9)
        assert ByzantineSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_runner_rejects_beyond_bound_byzantine_count(self):
        rng = np.random.default_rng(0)
        inputs = rng.uniform(-1.0, 1.0, size=(4, 1))
        plan = FaultPlan.byzantine_at([0, 1])
        with pytest.raises(ValueError, match="exceed the configured"):
            run_convex_hull_consensus(
                inputs, 1, 0.3, fault_plan=plan, algorithm="bcc"
            )

    def test_runner_rejects_bcc_below_bound_n(self):
        from repro.core.config import ResilienceError

        rng = np.random.default_rng(0)
        inputs = rng.uniform(-1.0, 1.0, size=(3, 1))
        with pytest.raises(ResilienceError):
            run_convex_hull_consensus(inputs, 1, 0.3, algorithm="bcc")

    def test_bcc_rejects_recovery_plans(self):
        rng = np.random.default_rng(0)
        inputs = rng.uniform(-1.0, 1.0, size=(4, 1))
        plan = FaultPlan.crash_recover({1: (0, 0, 5)})
        with pytest.raises(ValueError, match="crash-recovery"):
            run_convex_hull_consensus(
                inputs, 1, 0.3, fault_plan=plan, algorithm="bcc"
            )
