"""The corrupt link axis: damaged frames never cross the app boundary.

Satellite regression suite for the checksum integrity gate:

* a frame damaged in flight is dropped at ``on_frame`` before any
  transport state advances (DATA and ACK alike), counted in
  ``corrupt_drops``;
* the pristine copy in the retransmit queue recovers the message, so a
  reliable run over a corrupting link still decides — corruption is
  recast as loss, which the fair-lossy machinery already masks;
* in raw (unreliable) mode corruption surfaces as a *sequence gap* at
  the delivery boundary (``ChannelError``), never as a corrupted
  payload reaching the application.
"""

import numpy as np
import pytest

from repro.core.invariants import check_all
from repro.core.runner import run_convex_hull_consensus
from repro.geometry.cache import PERF
from repro.runtime.channel import ChannelError
from repro.runtime.faults import LinkFaultPlan, LinkFaultSpec
from repro.runtime.messages import InputTuple, SVInit
from repro.runtime.transport import (
    ACK,
    TransportNetwork,
    frame_checksum,
    run_transport_simulation,
)


def _payload(tag=0.0):
    return SVInit(entry=InputTuple(value=(float(tag),), sender=0))


def _take_head(net):
    """Pop the earliest deliverable frame off the fabric (sim-loop idiom)."""
    frame = net.fabric.ready_frames()[0]
    net.fabric.deliver(frame)
    return frame


class TestIntegrityGate:
    def test_corrupted_data_frame_dropped_before_any_state_advances(self):
        net = TransportNetwork(2)
        net.send(0, 1, _payload(), 0)
        frame = _take_head(net)
        frame.checksum ^= 0x5A5A
        before = PERF.corrupt_drops
        assert net.on_frame(frame) == []
        assert PERF.corrupt_drops == before + 1
        # No receive-side progress: the receiver still expects seq 0 and
        # sent no ack, so the sender's copy stays queued for retry.
        assert net._expected.get((0, 1), 0) == 0
        assert net.total_unacked == 1

    def test_corrupted_ack_frame_dropped_too(self):
        net = TransportNetwork(2)
        net.send(0, 1, _payload(), 0)
        data = _take_head(net)
        assert net.on_frame(data) == [data]
        ack = _take_head(net)
        assert ack.kind == ACK
        ack.checksum ^= 1
        before = PERF.corrupt_drops
        assert net.on_frame(ack) == []
        assert PERF.corrupt_drops == before + 1
        # The unacknowledged entry survives the damaged ack.
        assert net.total_unacked == 1

    def test_retransmission_recovers_from_corrupt_drop(self):
        net = TransportNetwork(2)
        net.send(0, 1, _payload(3.0), 0)
        frame = _take_head(net)
        frame.checksum ^= 0xFF
        assert net.on_frame(frame) == []
        # The timer path: jump to the retry deadline and fire it.  The
        # retransmitted copy comes from the pristine _unacked frame.
        assert net.has_work()
        net.advance_idle()
        retry = _take_head(net)
        assert retry.attempt == 2
        assert retry.checksum == frame_checksum(retry)
        out = net.on_frame(retry)
        assert len(out) == 1
        net.deliver_to_app(out[0])  # boundary oracle satisfied
        assert out[0].payload == _payload(3.0)

    def test_tampered_payload_fails_checksum(self):
        # The checksum covers the payload, not just the header: swapping
        # the payload of an otherwise-valid frame must trip the gate.
        net = TransportNetwork(2)
        net.send(0, 1, _payload(1.0), 0)
        frame = _take_head(net)
        frame.payload = _payload(2.0)
        before = PERF.corrupt_drops
        assert net.on_frame(frame) == []
        assert PERF.corrupt_drops == before + 1


class TestCorruptingLink:
    def test_app_boundary_never_sees_a_damaged_frame(self):
        # Fuzz a heavily corrupting link: every frame on_frame hands
        # back must verify against its own checksum.
        plan = LinkFaultPlan(default=LinkFaultSpec(corrupt=0.5), seed=9)
        net = TransportNetwork(2, plan)
        for i in range(40):
            net.send(0, 1, _payload(float(i)), 0)
        delivered = []
        while net.has_work():
            heads = net.fabric.ready_frames()
            if not heads:
                net.advance_idle()
                continue
            frame = heads[0]
            net.fabric.deliver(frame)
            for ready in net.on_frame(frame):
                assert ready.checksum == frame_checksum(ready)
                if ready.kind != ACK:
                    net.deliver_to_app(ready)
                    delivered.append(ready.payload)
        assert delivered == [_payload(float(i)) for i in range(40)]
        assert PERF.corrupt_drops > 0

    def test_end_to_end_consensus_survives_corrupting_links(self):
        rng = np.random.default_rng(5)
        inputs = rng.uniform(-1, 1, size=(4, 1))
        link = LinkFaultPlan(default=LinkFaultSpec(corrupt=0.2), seed=11)
        res = run_convex_hull_consensus(
            inputs, 1, 0.4, link_faults=link, seed=2, input_bounds=(-1.0, 1.0)
        )
        assert sorted(res.report.decided) == [0, 1, 2, 3]
        assert check_all(res.trace).ok
        counters = res.report.perf_counters
        assert counters["corrupt_drops"] > 0
        assert counters["retransmissions"] > 0

    def test_corrupt_only_plan_matches_clean_decisions(self):
        # Corruption is masked entirely below the application: the same
        # seed without link faults must reach identical decisions.
        rng = np.random.default_rng(5)
        inputs = rng.uniform(-1, 1, size=(4, 1))
        link = LinkFaultPlan(default=LinkFaultSpec(corrupt=0.15), seed=3)
        clean = run_convex_hull_consensus(
            inputs, 1, 0.4, seed=4, input_bounds=(-1.0, 1.0)
        )
        noisy = run_convex_hull_consensus(
            inputs, 1, 0.4, link_faults=link, seed=4, input_bounds=(-1.0, 1.0)
        )
        for pid in clean.outputs:
            assert clean.outputs[pid].vertices == pytest.approx(
                noisy.outputs[pid].vertices
            )


class TestRawModeControl:
    def test_raw_mode_surfaces_corruption_as_loss_never_as_bad_payload(self):
        # Negative control: without the reliable layer a corrupt drop
        # becomes a sequence gap, and the boundary oracle — not the
        # application — is what trips.
        net = TransportNetwork(2, reliable=False)
        net.send(0, 1, _payload(0.0), 0)
        net.send(0, 1, _payload(1.0), 0)
        first = _take_head(net)
        first.checksum ^= 7
        assert net.on_frame(first) == []  # dropped, no stash, no ack
        second = _take_head(net)
        out = net.on_frame(second)
        assert out == [second]
        with pytest.raises(ChannelError, match="expected 0"):
            net.deliver_to_app(second)

    def test_raw_run_over_corrupting_link_raises_channel_error(self):
        from repro.core.algorithm_cc import CCProcess
        from repro.core.config import CCConfig

        rng = np.random.default_rng(0)
        inputs = rng.uniform(-1, 1, size=(4, 1))
        config = CCConfig(
            n=4, f=1, dim=1, eps=0.5, input_lower=-1.0, input_upper=1.0
        )
        cores = [
            CCProcess(pid=i, config=config, input_point=inputs[i])
            for i in range(4)
        ]
        link = LinkFaultPlan(default=LinkFaultSpec(corrupt=0.3), seed=1)
        with pytest.raises(ChannelError):
            run_transport_simulation(
                cores, link_faults=link, reliable_transport=False
            )
