"""RecoveryManager: revival scheduling, durable degradation, setup guards."""

import numpy as np
import pytest

from repro.core.runner import cc_core_factory, run_convex_hull_consensus
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.faults import AMNESIA, DURABLE, LATE_JOIN, FaultPlan
from repro.runtime.recovery import RecoveryManager, make_recovery_setup
from repro.runtime.tracing import ProcessTrace


def _run(plan, *, durability_check=None, store=None, seed=3):
    rng = np.random.default_rng(11)
    inputs = rng.uniform(-1.0, 1.0, size=(5, 1))
    result = run_convex_hull_consensus(
        inputs,
        1,
        0.2,
        fault_plan=plan,
        seed=seed,
        input_bounds=(-1.0, 1.0),
        checkpoint_store=store,
    )
    if durability_check is not None:
        proc = result.trace.processes[durability_check]
        assert proc.recovered_at_step is not None
    return result


class TestScheduling:
    def _manager(self, plan, n=5):
        rng = np.random.default_rng(0)
        inputs = rng.uniform(-1.0, 1.0, size=(n, 1))
        traces = [ProcessTrace(pid=i, input_point=inputs[i]) for i in range(n)]
        from repro.core.config import CCConfig
        from repro.core.algorithm_cc import CCProcess
        from repro.runtime.network import Network
        from repro.runtime.process import ProcessShell

        config = CCConfig(
            n=n, f=1, dim=1, eps=0.2, input_lower=-1.0, input_upper=1.0
        )
        network = Network(n)
        shells = [
            ProcessShell(
                core=CCProcess(
                    pid=i, config=config, input_point=inputs[i], trace=traces[i]
                ),
                network=network,
                crash_spec=plan.crash_spec(i),
            )
            for i in range(n)
        ]
        factory = cc_core_factory(config, inputs, traces)
        return (
            RecoveryManager(plan, shells, core_factory=factory),
            shells,
        )

    def test_note_crash_schedules_once(self):
        plan = FaultPlan.crash_recover({4: (0, 1, 7)})
        manager, shells = self._manager(plan)
        manager.note_crash(shells[4], 10)
        manager.note_crash(shells[4], 99)  # duplicate notes are ignored
        assert manager.has_pending
        assert manager.will_recover(4)
        assert manager.due(16) == []
        assert manager.due(17) == [4]
        assert not manager.has_pending

    def test_non_recovering_crash_not_scheduled(self):
        plan = FaultPlan.crash_recover({4: (0, 1, 7)})
        manager, shells = self._manager(plan)
        manager.note_crash(shells[3], 5)  # pid 3 has no recovery spec
        assert not manager.has_pending
        assert not manager.will_recover(3)

    def test_pop_earliest_orders_by_due_step(self):
        plan = FaultPlan.crash_recover({3: (0, 0, 20), 4: (0, 0, 5)})
        manager, shells = self._manager(plan)
        manager.note_crash(shells[3], 0)
        manager.note_crash(shells[4], 0)
        assert manager.pop_earliest() == 4
        assert manager.pop_earliest() == 3

    def test_requires_core_factory(self):
        plan = FaultPlan.crash_recover({4: (0, 1, 7)})
        _, shells = self._manager(plan)
        with pytest.raises(ValueError, match="core_factory"):
            RecoveryManager(plan, shells, core_factory=None)


class TestSetup:
    def test_recoveries_without_factory_rejected(self):
        plan = FaultPlan.crash_recover({1: (0, 0, 3)})
        with pytest.raises(ValueError, match="core_factory"):
            make_recovery_setup(plan, None, None)

    def test_durable_plan_autoprovisions_store(self):
        plan = FaultPlan.crash_recover({1: (0, 0, 3)}, durability=DURABLE)
        store = make_recovery_setup(plan, None, lambda pid, data: None)
        assert isinstance(store, CheckpointStore)

    def test_amnesia_plan_needs_no_store(self):
        plan = FaultPlan.crash_recover({1: (0, 0, 3)}, durability=AMNESIA)
        assert make_recovery_setup(plan, None, lambda pid, data: None) is None

    def test_supplied_store_is_kept(self):
        plan = FaultPlan.crash_recover({1: (0, 0, 3)}, durability=DURABLE)
        mine = CheckpointStore()
        assert make_recovery_setup(plan, mine, lambda pid, data: None) is mine


class TestDurabilityModes:
    def test_durable_recovery_restores_and_decides(self):
        plan = FaultPlan.crash_recover({4: (1, 1, 8)}, durability=DURABLE)
        result = _run(plan, durability_check=4)
        proc = result.trace.processes[4]
        assert proc.recovery_durability == DURABLE
        assert proc.restarts == 0
        # Durable recovery on the reliable network = a slow process: the
        # recoverer decides and every invariant holds.
        assert 4 in result.report.decided
        assert 4 in result.report.recovered

    def test_amnesia_recovery_restarts(self):
        plan = FaultPlan.crash_recover({4: (1, 1, 8)}, durability=AMNESIA)
        result = _run(plan, durability_check=4)
        proc = result.trace.processes[4]
        assert proc.recovery_durability == AMNESIA
        assert proc.restarts == 1
        assert proc.pre_recovery_states  # first incarnation archived

    def test_late_join_recovery_stays_passive(self):
        plan = FaultPlan.crash_recover({4: (1, 1, 8)}, durability=LATE_JOIN)
        result = _run(plan, durability_check=4)
        proc = result.trace.processes[4]
        assert proc.recovery_durability == LATE_JOIN
        # A late-joiner never re-runs on_start, so it re-broadcasts
        # nothing: its restart is recorded but sends nothing new.
        assert proc.restarts == 1

    def test_durable_without_surviving_checkpoint_degrades_to_amnesia(self):
        # An empty store at revival time means the disk did not survive:
        # the *effective* mode recorded on the trace is amnesia.
        class AmnesiacStore(CheckpointStore):
            def load(self, key):
                return None

        plan = FaultPlan.crash_recover({4: (1, 1, 8)}, durability=DURABLE)
        result = _run(plan, durability_check=4, store=AmnesiacStore())
        proc = result.trace.processes[4]
        assert proc.recovery_durability == AMNESIA
        assert proc.restarts == 1
