"""Unit tests for the reliable-FIFO-exactly-once network fabric."""

import pytest

from repro.runtime.messages import InputTuple, SVInit
from repro.runtime.network import ChannelError, Network


def _payload(i=0):
    return SVInit(entry=InputTuple(value=(float(i),), sender=0))


class TestNetwork:
    def test_send_and_deliver(self):
        net = Network(3)
        net.send(0, 1, _payload(), send_round=0)
        heads = net.pending_heads({0, 1, 2})
        assert len(heads) == 1
        env = net.deliver(heads[0])
        assert env.src == 0 and env.dst == 1
        assert net.undelivered == 0

    def test_fifo_order_per_channel(self):
        net = Network(2)
        for i in range(5):
            net.send(0, 1, _payload(i), send_round=0)
        seqs = []
        while True:
            heads = net.pending_heads({0, 1})
            if not heads:
                break
            env = net.deliver(heads[0])
            seqs.append(env.seq)
        assert seqs == [0, 1, 2, 3, 4]

    def test_self_send_rejected(self):
        net = Network(2)
        with pytest.raises(ChannelError):
            net.send(1, 1, _payload(), send_round=0)

    def test_heads_exclude_dead_destinations(self):
        net = Network(3)
        net.send(0, 1, _payload(), send_round=0)
        net.send(0, 2, _payload(), send_round=0)
        heads = net.pending_heads({0, 2})
        assert all(env.dst == 2 for env in heads)

    def test_deliver_non_head_rejected(self):
        net = Network(2)
        net.send(0, 1, _payload(0), send_round=0)
        net.send(0, 1, _payload(1), send_round=0)
        heads = net.pending_heads({0, 1})
        env0 = net.deliver(heads[0])
        assert env0.seq == 0
        # Grab the new head, then try to re-deliver a stale envelope object.
        with pytest.raises(ChannelError):
            net.deliver(env0)

    def test_counters(self):
        net = Network(4)
        for dst in (1, 2, 3):
            net.send(0, dst, _payload(), send_round=1)
        assert net.messages_sent == 3
        assert net.undelivered == 3

    def test_needs_processes(self):
        with pytest.raises(ValueError):
            Network(0)

    def test_duplicate_delivery_raises(self):
        # Exactly-once: handing the same envelope to deliver() twice is a
        # harness bug and must surface as ChannelError, not a silent redo.
        net = Network(2)
        net.send(0, 1, _payload(), send_round=0)
        env = net.deliver(net.ready_heads()[0])
        net.send(0, 1, _payload(1), send_round=0)
        with pytest.raises(ChannelError):
            net.deliver(env)
        assert net.messages_delivered == 1

    def test_mark_crashed_idempotent(self):
        net = Network(3)
        net.send(0, 1, _payload(), send_round=0)
        net.send(0, 2, _payload(), send_round=0)
        net.mark_crashed(1)
        ready_after_first = [(e.src, e.dst) for e in net.ready_heads()]
        net.mark_crashed(1)
        assert [(e.src, e.dst) for e in net.ready_heads()] == ready_after_first
        assert ready_after_first == [(0, 2)]
        # Messages to the crashed process stay queued (reliability).
        assert net.channel_depth(0, 1) == 1

    def test_ready_heads_order_stable(self):
        # The scheduler's candidate list is (src, dst)-lexicographic no
        # matter the send order — the determinism seeded runs rely on.
        net = Network(4)
        for src, dst in [(3, 0), (1, 2), (0, 3), (2, 1), (0, 1)]:
            net.send(src, dst, _payload(), send_round=0)
        keys = [(e.src, e.dst) for e in net.ready_heads()]
        assert keys == sorted(keys)
        # Delivering one head keeps the rest in the same relative order.
        net.deliver(net.ready_heads()[0])
        keys_after = [(e.src, e.dst) for e in net.ready_heads()]
        assert keys_after == [k for k in keys if k != (0, 1)]


class TestReadyHeadsView:
    """The lazy view (hot-loop path) mirrors the eager oracle exactly."""

    def _filled_net(self, n=4, seed=3):
        import random

        rng = random.Random(seed)
        net = Network(n)
        for _ in range(20):
            src = rng.randrange(n)
            dst = rng.randrange(n)
            if src != dst:
                net.send(src, dst, _payload(), send_round=0)
        return net

    def test_view_matches_oracle_elementwise(self):
        net = self._filled_net()
        view = net.ready_view()
        eager = net.ready_heads()
        assert len(view) == len(eager)
        assert list(view) == eager
        for i in range(len(eager)):
            assert view[i] is eager[i]
        assert view[1:3] == eager[1:3]

    def test_view_is_live_through_mutations(self):
        import random

        rng = random.Random(7)
        net = self._filled_net()
        view = net.ready_view()
        # Interleave deliveries, sends, and a crash; the one view object
        # tracks the oracle through every mutation.
        for step in range(30):
            if not net.has_ready:
                break
            assert list(view) == net.ready_heads()
            env = view[rng.randrange(len(view))]
            net.deliver(env)
            if step == 5:
                net.send(0, 1, _payload(99), send_round=1)
            if step == 10:
                net.mark_crashed(2)
        assert list(view) == net.ready_heads()

    def test_crash_removes_inbound_from_view(self):
        net = Network(3)
        net.send(0, 1, _payload(), send_round=0)
        net.send(0, 2, _payload(), send_round=0)
        net.mark_crashed(1)
        view = net.ready_view()
        assert [(e.src, e.dst) for e in view] == [(0, 2)]
        # Sends to the crashed destination never enter the view.
        net.send(2, 1, _payload(), send_round=0)
        assert [(e.src, e.dst) for e in view] == [(0, 2)]

    def test_queued_channel_stays_ready_after_delivery(self):
        net = Network(2)
        net.send(0, 1, _payload(0), send_round=0)
        net.send(0, 1, _payload(1), send_round=0)
        view = net.ready_view()
        net.deliver(view[0])
        # Channel still non-empty: stays in the view with its new head.
        assert len(view) == 1
        assert list(view) == net.ready_heads()
