"""Unit tests for the lossy fabric + reliable-delivery transport."""

import numpy as np
import pytest

from repro.core.algorithm_cc import CCProcess
from repro.core.config import CCConfig
from repro.runtime.channel import ChannelError
from repro.runtime.faults import FaultPlan, LinkFaultPlan, LinkFaultSpec
from repro.runtime.messages import InputTuple, SVInit
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.transport import (
    DATA,
    Frame,
    LossyFabric,
    TransportBudgetError,
    TransportNetwork,
    run_transport_simulation,
)


def make_cores(n=4, d=1, f=1, eps=0.5, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(-1, 1, size=(n, d))
    config = CCConfig(
        n=n, f=f, dim=d, eps=eps, input_lower=-1.0, input_upper=1.0
    )
    return [
        CCProcess(pid=i, config=config, input_point=inputs[i])
        for i in range(n)
    ]


def _payload(tag=0):
    return SVInit(entry=InputTuple(value=(float(tag),), sender=0))


class TestLinkFaultSpec:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            LinkFaultSpec(loss=1.2)
        with pytest.raises(ValueError):
            LinkFaultSpec(dup=-0.1)
        with pytest.raises(ValueError):
            LinkFaultSpec(loss=1.0)  # a fair-lossy link needs loss < 1

    def test_rejects_ill_formed_partition(self):
        with pytest.raises(ValueError):
            LinkFaultSpec(partitions=((10, 5),))
        with pytest.raises(ValueError):
            LinkFaultSpec(partitions=((-1, 5),))

    def test_partition_queries(self):
        spec = LinkFaultSpec(partitions=((5, 10), (20, None)))
        assert not spec.partitioned_at(4)
        assert spec.partitioned_at(5) and spec.partitioned_at(9)
        assert not spec.partitioned_at(10)
        assert spec.partitioned_at(10**9)
        assert spec.heal_after(7) == 10
        assert spec.heal_after(25) is None
        assert spec.heal_after(12) == 12  # not partitioned there

    def test_faulty_flag(self):
        assert not LinkFaultSpec().faulty
        assert LinkFaultSpec(loss=0.1).faulty
        assert LinkFaultSpec(partitions=((0, 5),)).faulty

    def test_json_roundtrip(self):
        spec = LinkFaultSpec(
            loss=0.2, dup=0.1, delay=3, reorder=0.4, partitions=((2, None),)
        )
        assert LinkFaultSpec.from_json_dict(spec.to_json_dict()) == spec


class TestLinkFaultPlan:
    def test_default_and_overrides(self):
        plan = LinkFaultPlan(
            default=LinkFaultSpec(loss=0.1),
            links={(0, 1): LinkFaultSpec(loss=0.5)},
        )
        assert plan.spec(0, 1).loss == 0.5
        assert plan.spec(1, 0).loss == 0.1
        assert plan.faulty

    def test_isolate_builds_cut_links(self):
        plan = LinkFaultPlan.isolate([0], 4, start=5, heal=10)
        cut = {(s, d) for (s, d) in plan.links}
        assert cut == {(0, 1), (0, 2), (0, 3), (1, 0), (2, 0), (3, 0)}
        assert all(spec.partitions == ((5, 10),) for spec in plan.links.values())
        assert not plan.default.faulty

    def test_isolate_validates_pids(self):
        with pytest.raises(ValueError):
            LinkFaultPlan.isolate([], 4, 0, 5)
        with pytest.raises(ValueError):
            LinkFaultPlan.isolate([7], 4, 0, 5)

    def test_json_roundtrip(self):
        plan = LinkFaultPlan.isolate(
            [1], 3, 0, None, base=LinkFaultSpec(loss=0.1), seed=42
        )
        assert LinkFaultPlan.from_json_dict(plan.to_json_dict()) == plan


class TestLossyFabric:
    def test_perfect_link_is_passthrough(self):
        fabric = LossyFabric(2, LinkFaultPlan())
        frame = Frame(kind=DATA, src=0, dst=1, seq=0, payload=_payload())
        assert fabric.send(frame)
        heads = fabric.ready_frames()
        assert len(heads) == 1 and heads[0] is frame
        fabric.deliver(frame)
        assert fabric.in_flight == 0
        assert fabric.clock == 1

    def test_partitioned_send_is_dropped(self):
        plan = LinkFaultPlan(
            links={(0, 1): LinkFaultSpec(partitions=((0, 10),))}
        )
        fabric = LossyFabric(2, plan)
        assert not fabric.send(Frame(kind=DATA, src=0, dst=1, seq=0))
        assert fabric.in_flight == 0
        # The reverse link is unaffected.
        assert fabric.send(Frame(kind=DATA, src=1, dst=0, seq=0))

    def test_queued_frames_withheld_until_heal(self):
        plan = LinkFaultPlan(
            links={(0, 1): LinkFaultSpec(partitions=((5, 10),))}
        )
        fabric = LossyFabric(2, plan)
        fabric.send(Frame(kind=DATA, src=0, dst=1, seq=0))
        fabric.advance_to(6)
        assert fabric.ready_frames() == []  # head withheld mid-partition
        assert fabric.next_release() == 10
        fabric.advance_to(10)
        assert len(fabric.ready_frames()) == 1

    def test_deliver_rejects_non_head(self):
        fabric = LossyFabric(2, LinkFaultPlan())
        f0 = Frame(kind=DATA, src=0, dst=1, seq=0)
        f1 = Frame(kind=DATA, src=0, dst=1, seq=1)
        fabric.send(f0)
        fabric.send(f1)
        with pytest.raises(ChannelError):
            fabric.deliver(f1)

    def test_loss_and_dup_rolls_are_seed_deterministic(self):
        plan = LinkFaultPlan.uniform(loss=0.4, dup=0.3, delay=2, seed=9)

        def roll():
            fabric = LossyFabric(2, plan)
            kept = [
                fabric.send(Frame(kind=DATA, src=0, dst=1, seq=i))
                for i in range(50)
            ]
            return kept, fabric.in_flight

        assert roll() == roll()
        other = LossyFabric(2, LinkFaultPlan.uniform(loss=0.4, dup=0.3, delay=2, seed=10))
        kept_other = [
            other.send(Frame(kind=DATA, src=0, dst=1, seq=i))
            for i in range(50)
        ]
        assert kept_other != roll()[0]  # different seed, different stream


class TestTransportNetwork:
    def test_rejects_self_send(self):
        transport = TransportNetwork(3)
        with pytest.raises(ChannelError):
            transport.send(1, 1, _payload(), send_round=0)

    def test_boundary_oracle_is_independent_of_reassembly(self):
        # Corrupt the reassembly state and hand a "reassembled" frame to
        # the boundary: the oracle must still catch the wrong sequence.
        transport = TransportNetwork(2)
        bad = Frame(kind=DATA, src=0, dst=1, seq=3, payload=_payload())
        with pytest.raises(ChannelError):
            transport.deliver_to_app(bad)


class TestRunTransportSimulation:
    def test_perfect_fabric_decides(self):
        report = run_transport_simulation(
            make_cores(), scheduler=RandomScheduler(seed=1)
        )
        assert sorted(report.decided) == [0, 1, 2, 3]
        assert report.messages_delivered == report.messages_sent
        assert len(report.app_deliveries) == report.messages_delivered

    def test_lossy_fabric_exactly_once(self):
        plan = LinkFaultPlan.uniform(
            loss=0.3, dup=0.2, delay=3, reorder=0.3, seed=7
        )
        report = run_transport_simulation(
            make_cores(seed=2),
            scheduler=RandomScheduler(seed=1),
            link_faults=plan,
        )
        assert sorted(report.decided) == [0, 1, 2, 3]
        # Reliable delivery: every application message arrives despite loss.
        assert report.messages_delivered == report.messages_sent
        counters = report.perf_counters
        assert counters["retransmissions"] > 0
        assert counters["link_drops"] > 0
        assert counters["ack_messages"] > 0

    def test_crash_semantics_preserved(self):
        plan = LinkFaultPlan.uniform(loss=0.2, seed=3)
        report = run_transport_simulation(
            make_cores(n=4),
            FaultPlan.crash_at({3: (0, 2)}),
            RandomScheduler(seed=5),
            link_faults=plan,
        )
        assert report.crashed == [3]
        assert sorted(report.decided) == [0, 1, 2]

    def test_determinism_per_seed(self):
        plan = LinkFaultPlan.uniform(loss=0.25, dup=0.1, delay=2, seed=13)

        def once():
            return run_transport_simulation(
                make_cores(seed=4),
                scheduler=RandomScheduler(seed=2),
                link_faults=plan,
            )

        a, b = once(), once()
        assert a.delivery_steps == b.delivery_steps
        assert a.app_deliveries == b.app_deliveries
        # Geometry-cache counters warm up across runs; the transport's
        # own counters must be bit-identical.
        transport_keys = (
            "retransmissions",
            "dup_drops",
            "ack_messages",
            "partition_heals",
            "link_drops",
            "link_dups",
        )
        for key in transport_keys:
            assert a.perf_counters.get(key, 0) == b.perf_counters.get(key, 0)

    def test_raw_mode_trips_the_oracle(self):
        plan = LinkFaultPlan.uniform(loss=0.3, seed=5)
        with pytest.raises(ChannelError):
            run_transport_simulation(
                make_cores(),
                scheduler=RandomScheduler(seed=1),
                link_faults=plan,
                reliable_transport=False,
            )

    def test_healing_partition_decides_and_counts_heals(self):
        plan = LinkFaultPlan.isolate([0], 4, start=0, heal=200, seed=1)
        report = run_transport_simulation(
            make_cores(seed=6),
            scheduler=RandomScheduler(seed=3),
            link_faults=plan,
        )
        assert sorted(report.decided) == [0, 1, 2, 3]
        assert report.perf_counters["partition_heals"] >= 1

    def test_forever_partition_aborts_promptly(self):
        plan = LinkFaultPlan.isolate([0], 4, start=0, heal=None, seed=1)
        with pytest.raises(TransportBudgetError):
            run_transport_simulation(
                make_cores(seed=6),
                scheduler=RandomScheduler(seed=3),
                link_faults=plan,
                clock_budget=50_000,
            )

    def test_run_simulation_delegates(self):
        from repro.runtime.simulator import run_simulation

        plan = LinkFaultPlan.uniform(loss=0.2, seed=21)
        report = run_simulation(
            make_cores(seed=8),
            scheduler=RandomScheduler(seed=4),
            link_faults=plan,
        )
        assert sorted(report.decided) == [0, 1, 2, 3]
        assert report.app_deliveries  # transport path was taken
