"""Fault-model depth: the model variants the paper discusses in Section 1.

* crash-with-*correct*-inputs (the "more commonly used" model the paper
  defers to its tech report): expressible here as a fault plan with
  ``incorrect_inputs = empty set`` — validity is then measured against the
  hull of ALL inputs;
* faulty processes that never crash (Theorem 3's execution family);
* multiple simultaneous round-0 crashes at f = 2;
* adversaries that starve *correct* processes (slowness is not a fault —
  quorums must route around them and they must still decide).
"""

import numpy as np
import pytest

from repro.core.invariants import check_all, check_validity
from repro.core.runner import run_convex_hull_consensus
from repro.runtime.faults import CrashSpec, FaultPlan
from repro.runtime.scheduler import RandomScheduler, TargetedDelayScheduler
from repro.workloads import gaussian_cluster, uniform_box

# Executes whole families of faulty runs per test; slow tier.
pytestmark = pytest.mark.slow


class TestCrashWithCorrectInputs:
    def test_all_inputs_count_as_correct(self):
        inputs = uniform_box(6, 1, seed=0)
        plan = FaultPlan(
            faulty=frozenset({5}),
            crashes={5: CrashSpec(round_index=1, after_sends=2)},
            incorrect_inputs=frozenset(),  # the crash-correct-inputs model
        )
        result = run_convex_hull_consensus(inputs, 1, 0.2, fault_plan=plan, seed=1)
        trace = result.trace
        # correct_inputs now includes the crashed process's row.
        assert trace.correct_inputs.shape[0] == 6
        assert check_validity(trace).ok

    def test_correct_inputs_hull_is_larger_domain(self):
        # With an extreme input at the crashing process, the two models
        # disagree about the validity domain; the execution must satisfy
        # the *incorrect*-inputs model (smaller hull) when flagged so.
        inputs = uniform_box(6, 1, seed=1)
        inputs[5] = 0.999  # extreme
        plan_incorrect = FaultPlan.crash_at({5: (1, 2)})
        result = run_convex_hull_consensus(
            inputs, 1, 0.2, fault_plan=plan_incorrect, seed=2
        )
        assert check_validity(result.trace).ok
        # Same execution judged under crash-with-correct-inputs also holds
        # (a fortiori: the validity hull only grows).
        relabelled = result.trace
        relabelled.fault_plan = FaultPlan(
            faulty=frozenset({5}),
            crashes={5: CrashSpec(1, 2)},
            incorrect_inputs=frozenset(),
        )
        assert check_validity(relabelled).ok


class TestFaultyNeverCrash:
    def test_theorem3_execution_family(self):
        inputs = gaussian_cluster(9, 2, spread=0.3, seed=3)
        inputs[7] = [0.9, -0.9]
        inputs[8] = [-0.9, 0.9]
        plan = FaultPlan.silent_faulty([7, 8])
        sched = TargetedDelayScheduler(slow=frozenset({7, 8}), seed=4)
        result = run_convex_hull_consensus(
            inputs, 2, 0.2, fault_plan=plan, scheduler=sched,
            input_bounds=(-1.5, 1.5),
        )
        # Everyone decides, including the faulty-but-alive processes.
        assert sorted(result.report.decided) == list(range(9))
        assert check_all(result.trace).ok


class TestMultiCrash:
    def test_two_round0_crashes_f2(self):
        inputs = uniform_box(7, 1, seed=5)
        plan = FaultPlan.crash_at({5: (0, 1), 6: (0, 3)})
        result = run_convex_hull_consensus(inputs, 2, 0.2, fault_plan=plan, seed=6)
        assert sorted(result.report.crashed) == [5, 6]
        assert check_all(result.trace).ok

    def test_staggered_crashes_different_rounds(self):
        inputs = uniform_box(7, 1, seed=6)
        plan = FaultPlan.crash_at({5: (0, 4), 6: (3, 2)})
        result = run_convex_hull_consensus(inputs, 2, 0.2, fault_plan=plan, seed=7)
        assert check_all(result.trace).ok
        # F[t] grows monotonically across rounds.
        f_sets = [
            result.trace.crashed_before_round(t)
            for t in range(result.config.t_end + 1)
        ]
        for earlier, later in zip(f_sets, f_sets[1:]):
            assert earlier <= later

    def test_crash_count_at_model_limit(self):
        # All f processes crash before sending anything at all.
        inputs = uniform_box(7, 1, seed=7)
        plan = FaultPlan.crash_at({5: (0, 0), 6: (0, 0)})
        result = run_convex_hull_consensus(inputs, 2, 0.2, fault_plan=plan, seed=8)
        assert sorted(result.report.decided) == [0, 1, 2, 3, 4]
        assert check_all(result.trace).ok


class TestStarvedCorrectProcesses:
    def test_slow_correct_processes_still_decide(self):
        # Slowness is not a fault: the adversary starves two CORRECT
        # processes; quorums exclude them but they must catch up and
        # decide with the same guarantees.
        inputs = uniform_box(6, 1, seed=8)
        sched = TargetedDelayScheduler(slow=frozenset({0, 1}), seed=9)
        result = run_convex_hull_consensus(inputs, 1, 0.2, scheduler=sched)
        assert sorted(result.report.decided) == list(range(6))
        assert check_all(result.trace).ok

    def test_slow_plus_faulty_combined(self):
        inputs = uniform_box(6, 1, seed=9)
        inputs[5] = 0.99
        plan = FaultPlan.crash_at({5: (2, 1)})
        sched = TargetedDelayScheduler(slow=frozenset({0, 5}), seed=10)
        result = run_convex_hull_consensus(
            inputs, 1, 0.2, fault_plan=plan, scheduler=sched
        )
        assert 0 in result.report.decided
        assert check_all(result.trace).ok
