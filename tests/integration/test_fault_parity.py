"""Fault parity: the same ``FaultPlan`` on both runtimes.

The lockstep (discrete-event) simulator is where the chaos engine fuzzes;
the asyncio runtime is the concurrency-realistic cross-check.  For the
same scenario and fault plan both must satisfy every paper property, and
their decided hulls must land in the same region (exact interleavings
differ by design, so the comparison is geometric, not bitwise).
"""

import numpy as np
import pytest

from repro.core.invariants import check_all
from repro.core.runner import run_convex_hull_consensus
from repro.geometry.hausdorff import hausdorff_distance
from repro.runtime.asyncio_runtime import run_asyncio_consensus
from repro.runtime.faults import FaultPlan
from repro.workloads import gaussian_cluster, with_outliers


SCENARIOS = [
    pytest.param(
        FaultPlan.crash_at({4: (0, 2)}), id="mid-broadcast-round0"
    ),
    pytest.param(
        FaultPlan.crash_at({4: (1, 0)}), id="silent-from-round1"
    ),
    pytest.param(FaultPlan.silent_faulty([4]), id="never-crashes"),
]


@pytest.fixture(scope="module")
def inputs():
    points = gaussian_cluster(5, 1, seed=13)
    return with_outliers(points, [4], magnitude=3.0, seed=13)


@pytest.mark.parametrize("plan", SCENARIOS)
class TestFaultParity:
    @pytest.fixture()
    def runs(self, inputs, plan):
        lockstep = run_convex_hull_consensus(
            inputs, 1, 0.2, fault_plan=plan, seed=3, input_bounds=(-4.0, 4.0)
        )
        aio = run_asyncio_consensus(
            inputs, 1, 0.2, fault_plan=plan, seed=3, input_bounds=(-4.0, 4.0)
        )
        return lockstep, aio

    def test_both_runtimes_satisfy_all_invariants(self, runs):
        lockstep, aio = runs
        assert check_all(lockstep.trace).ok
        assert check_all(aio.trace).ok

    def test_decided_hulls_land_close(self, inputs, runs):
        lockstep, aio = runs
        lk = next(iter(lockstep.fault_free_outputs.values()))
        ao = next(iter(aio.trace.fault_free_outputs().values()))
        # Both hulls contain I_Z and lie inside the correct-input hull,
        # so their distance is bounded by the correct-input spread.
        correct = np.delete(np.asarray(inputs), 4, axis=0)
        spread = float(np.linalg.norm(correct.max(0) - correct.min(0)))
        assert hausdorff_distance(lk, ao) <= spread + 1e-9

    def test_same_fault_bookkeeping(self, runs):
        lockstep, aio = runs
        assert lockstep.trace.faulty == aio.trace.faulty
