"""Crash-recovery across every runtime and durability mode.

The matrix the tentpole must satisfy: the discrete-event simulator, the
transport simulation, the lockstep runtime, and the asyncio runtime all
reanimate a recovered process; durable recovery behaves as a slow
process (the recoverer decides, every paper property holds); amnesia and
late-join keep safety while termination may regress only for the
recovered process itself; and the historical no-recovery path stays
bit-identical.
"""

import numpy as np
import pytest

from repro.core.invariants import check_all, check_termination
from repro.core.runner import run_convex_hull_consensus
from repro.runtime.asyncio_runtime import run_asyncio_consensus
from repro.runtime.faults import (
    AMNESIA,
    DURABLE,
    LATE_JOIN,
    FaultPlan,
    LinkFaultPlan,
    LinkFaultSpec,
)
from repro.runtime.lockstep import run_lockstep_consensus


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(21)
    return rng.uniform(-1.0, 1.0, size=(5, 1))


def _plan(durability):
    return FaultPlan.crash_recover({4: (1, 1, 9)}, durability=durability)


RUNTIMES = {
    "simulator": lambda inputs, plan: run_convex_hull_consensus(
        inputs, 1, 0.2, fault_plan=plan, seed=4, input_bounds=(-1.0, 1.0)
    ),
    "transport": lambda inputs, plan: run_convex_hull_consensus(
        inputs,
        1,
        0.2,
        fault_plan=plan,
        seed=4,
        input_bounds=(-1.0, 1.0),
        link_faults=LinkFaultPlan(default=LinkFaultSpec(loss=0.1), seed=2),
    ),
    "lockstep": lambda inputs, plan: run_lockstep_consensus(
        inputs, 1, 0.2, fault_plan=plan, input_bounds=(-1.0, 1.0)
    ),
    "asyncio": lambda inputs, plan: run_asyncio_consensus(
        inputs, 1, 0.2, fault_plan=plan, seed=4, input_bounds=(-1.0, 1.0)
    ),
}


@pytest.mark.parametrize("runtime", sorted(RUNTIMES))
def test_durable_recovery_decides_everywhere(inputs, runtime):
    result = RUNTIMES[runtime](inputs, _plan(DURABLE))
    assert 4 in result.report.recovered, runtime
    assert 4 in result.report.decided, runtime
    report = check_all(result.trace)
    assert report.ok, (runtime, report)


@pytest.mark.parametrize("runtime", sorted(RUNTIMES))
@pytest.mark.parametrize("durability", [AMNESIA, LATE_JOIN])
def test_restart_modes_keep_safety_everywhere(inputs, runtime, durability):
    result = RUNTIMES[runtime](inputs, _plan(durability))
    assert 4 in result.report.recovered, runtime
    report = check_all(result.trace)
    # Safety must hold over every incarnation; termination may regress
    # only for the recovered process itself, and the regression must be
    # *reported* (recovered_undecided), never silently dropped.
    assert report.validity.ok, runtime
    assert report.agreement.ok, runtime
    term = report.termination
    assert term.ok, runtime
    if 4 not in result.report.decided:
        assert term.recovered_undecided == [4], runtime
    # The four fault-free processes always decide.
    assert set(result.report.decided) >= {0, 1, 2, 3}, runtime


def test_durable_stuck_recoverer_would_be_a_violation(inputs):
    # check_termination treats an undecided *durable* recoverer as stuck
    # (a durable recovery has no excuse not to decide); synthesize one.
    plan = _plan(DURABLE)
    result = RUNTIMES["simulator"](inputs, plan)
    trace = result.trace
    proc = trace.processes[4]
    assert proc.decided
    proc.decided = False  # forge the failure the checker must flag
    term = check_termination(trace)
    assert not term.ok
    assert 4 in term.stuck


def test_no_recovery_path_is_bit_identical(inputs):
    # The same crash-stop plan, run before and after the recovery
    # machinery existed, must produce identical executions.  Proxy: a
    # plan without recoveries takes the historical code path (no store,
    # no manager) and repeated runs are byte-identical in decisions and
    # message counts.
    plan = FaultPlan.crash_at({4: (1, 1)})
    a = run_convex_hull_consensus(
        inputs, 1, 0.2, fault_plan=plan, seed=4, input_bounds=(-1.0, 1.0)
    )
    b = run_convex_hull_consensus(
        inputs, 1, 0.2, fault_plan=plan, seed=4, input_bounds=(-1.0, 1.0)
    )
    assert a.report.messages_sent == b.report.messages_sent
    assert a.report.delivery_steps == b.report.delivery_steps
    assert sorted(a.trace.outputs()) == sorted(b.trace.outputs())
    for pid, poly in a.trace.outputs().items():
        np.testing.assert_array_equal(
            poly.vertices, b.trace.outputs()[pid].vertices
        )
    assert a.report.recovered == [] and b.report.recovered == []


def test_recovery_trace_survives_serialization(inputs):
    from repro.analysis.serialization import trace_from_dict, trace_to_dict

    result = RUNTIMES["simulator"](inputs, _plan(AMNESIA))
    round_tripped = trace_from_dict(trace_to_dict(result.trace))
    proc = round_tripped.processes[4]
    original = result.trace.processes[4]
    assert proc.recovered_at_step == original.recovered_at_step
    assert proc.recovery_durability == AMNESIA
    assert proc.restarts == original.restarts == 1
    assert len(proc.pre_recovery_states) == 1
    assert round_tripped.fault_plan.recovery_spec(4) is not None
    # The recovery-aware checkers read identically off the round trip.
    assert (
        check_all(round_tripped).termination.recovered_undecided
        == check_all(result.trace).termination.recovered_undecided
    )
