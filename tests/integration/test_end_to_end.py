"""End-to-end integration: every layer exercised in one flow."""

import numpy as np
import pytest

from repro import (
    FaultPlan,
    QuadraticCost,
    check_all,
    run_convex_hull_consensus,
    run_function_optimization,
    run_vector_consensus,
)
from repro.analysis import convergence_series, cost_summary, output_size_report
from repro.core.matrix import (
    check_claim1,
    ergodicity_coefficients,
    reconstruct_transition_matrices,
    verify_state_evolution,
)
from repro.runtime.faults import CrashSpec
from repro.runtime.scheduler import TargetedDelayScheduler
from repro.workloads import gaussian_cluster, with_outliers

# Full multi-process executions across dimensions and fault plans: the
# heaviest tier of the suite, excluded from `pytest -m "not slow"`.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def full_pipeline_run():
    """One adversarial run shared by the assertions below."""
    inputs = with_outliers(
        gaussian_cluster(9, 2, spread=0.6, seed=21), [7, 8], magnitude=4.0, seed=21
    )
    plan = FaultPlan(
        faulty=frozenset({7, 8}),
        crashes={7: CrashSpec(round_index=0, after_sends=5)},
    )
    sched = TargetedDelayScheduler(slow=frozenset({7, 8}), seed=13)
    return run_convex_hull_consensus(
        inputs, 2, 0.25, fault_plan=plan, scheduler=sched, input_bounds=(-5, 5)
    )


class TestFullPipeline:
    def test_all_invariants(self, full_pipeline_run):
        assert check_all(full_pipeline_run.trace).ok

    def test_matrix_analysis_chain(self, full_pipeline_run):
        trace = full_pipeline_run.trace
        matrices = reconstruct_transition_matrices(trace)
        assert verify_state_evolution(trace, matrices).ok
        assert ergodicity_coefficients(trace, matrices).ok
        assert check_claim1(trace, matrices)

    def test_metrics_chain(self, full_pipeline_run):
        trace = full_pipeline_run.trace
        series = convergence_series(trace)
        assert series.disagreement[-1] < trace.eps
        sizes = output_size_report(trace)
        assert sizes.min_ratio_vs_iz >= 1.0 - 1e-9
        summary = cost_summary(trace)
        assert summary.messages_sent > 0


class TestDerivedProblems:
    def test_vector_consensus_inherits_guarantees(self):
        inputs = gaussian_cluster(8, 2, seed=22)
        vc = run_vector_consensus(inputs, 1, eps=0.1, seed=5)
        assert vc.max_pairwise_distance() < 0.1
        assert check_all(vc.cc_result.trace).ok

    def test_optimization_inherits_guarantees(self):
        inputs = gaussian_cluster(8, 2, seed=23)
        opt = run_function_optimization(
            inputs, 1, beta=0.5, cost=QuadraticCost([0.0, 0.0]), seed=6
        )
        assert opt.cost_spread() < 0.5
        assert check_all(opt.cc_result.trace).ok


class TestDimensionSweep:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_minimum_configuration_per_dimension(self, d):
        n = (d + 2) * 1 + 1
        rng = np.random.default_rng(d)
        inputs = rng.uniform(-1, 1, size=(n, d))
        result = run_convex_hull_consensus(inputs, 1, 0.5, seed=d)
        assert check_all(result.trace).ok

    def test_f2_configuration(self):
        n = (1 + 2) * 2 + 1  # d=1, f=2 -> 7
        rng = np.random.default_rng(9)
        inputs = rng.uniform(-1, 1, size=(n, 1))
        plan = FaultPlan.crash_at({5: (0, 2), 6: (2, 1)})
        result = run_convex_hull_consensus(inputs, 2, 0.2, fault_plan=plan, seed=2)
        assert check_all(result.trace).ok
