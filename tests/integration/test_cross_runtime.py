"""Cross-runtime integration: discrete-event and asyncio agree on the
paper's guarantees (not on exact interleavings, which differ by design)."""

import numpy as np
import pytest

from repro.core.invariants import check_all
from repro.core.matrix import verify_state_evolution
from repro.core.runner import run_convex_hull_consensus
from repro.runtime.asyncio_runtime import run_asyncio_consensus
from repro.runtime.faults import FaultPlan


@pytest.fixture(scope="module")
def shared_inputs():
    rng = np.random.default_rng(31)
    return rng.uniform(-1.0, 1.0, size=(5, 1))


class TestCrossRuntime:
    def test_both_satisfy_invariants(self, shared_inputs):
        de = run_convex_hull_consensus(shared_inputs, 1, 0.2, seed=3)
        aio = run_asyncio_consensus(shared_inputs, 1, 0.2, seed=3)
        assert check_all(de.trace).ok
        assert check_all(aio.trace).ok

    def test_same_t_end(self, shared_inputs):
        de = run_convex_hull_consensus(shared_inputs, 1, 0.2, seed=3)
        aio = run_asyncio_consensus(shared_inputs, 1, 0.2, seed=3)
        assert de.config.t_end == aio.trace.t_end

    def test_outputs_close_across_runtimes(self, shared_inputs):
        """Both runtimes' outputs approximate the same ideal: they must be
        within 2*eps of each other (each is within eps of its own peers
        and both contain I_Z)."""
        from repro.geometry.hausdorff import hausdorff_distance

        eps = 0.2
        de = run_convex_hull_consensus(shared_inputs, 1, eps, seed=3)
        aio = run_asyncio_consensus(shared_inputs, 1, eps, seed=3)
        de_out = next(iter(de.fault_free_outputs.values()))
        aio_out = next(iter(aio.trace.fault_free_outputs().values()))
        # Not a paper theorem, but both polytopes contain I_Z and are valid:
        # sanity-bound their distance by the input spread.
        spread = float(
            np.linalg.norm(shared_inputs.max(0) - shared_inputs.min(0))
        )
        assert hausdorff_distance(de_out, aio_out) <= spread

    def test_matrix_analysis_works_on_asyncio_traces(self, shared_inputs):
        plan = FaultPlan.crash_at({4: (1, 2)})
        aio = run_asyncio_consensus(
            shared_inputs, 1, 0.3, fault_plan=plan, seed=5
        )
        assert verify_state_evolution(aio.trace).ok
