"""Systematic crash/scheduler sweep: the paper's properties must hold in
every cell of the (crash timing) x (scheduler) x (link faults) matrix.

The link-fault axis runs every crash cell both on the structural
reliable network and over the lossy fabric + reliable transport, so the
PR-5 channel machinery and the crash machinery are exercised together:
a crash mid-broadcast must behave identically whether the undelivered
messages sit in a structural channel or in a retransmit queue.
"""

import numpy as np
import pytest

from repro.core.invariants import check_all
from repro.core.runner import run_convex_hull_consensus
from repro.runtime.faults import FaultPlan, LinkFaultPlan, LinkFaultSpec
from repro.runtime.scheduler import (
    BurstyScheduler,
    FifoFairScheduler,
    RandomScheduler,
    TargetedDelayScheduler,
)

SCHEDULERS = {
    "random": lambda: RandomScheduler(seed=5),
    "fifo": lambda: FifoFairScheduler(),
    "bursty": lambda: BurstyScheduler(seed=5),
    "starve-victim": lambda: TargetedDelayScheduler(slow=frozenset({4}), seed=5),
}

CRASH_PLANS = {
    "none": FaultPlan.none(),
    "silent": FaultPlan.silent_faulty([4]),
    "round0-early": FaultPlan.crash_at({4: (0, 0)}),
    "round0-mid-broadcast": FaultPlan.crash_at({4: (0, 2)}),
    "round1-mid-broadcast": FaultPlan.crash_at({4: (1, 1)}),
    "round2": FaultPlan.crash_at({4: (2, 3)}),
}

LINK_PLANS = {
    "reliable": lambda: None,
    "lossy": lambda: LinkFaultPlan(
        default=LinkFaultSpec(loss=0.15, dup=0.1, delay=2, reorder=0.2),
        seed=9,
    ),
}


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(77)
    pts = rng.uniform(-1.0, 1.0, size=(5, 1))
    pts[4] = 0.95  # faulty holds an extreme (incorrect) input
    return pts


@pytest.mark.parametrize("link_name", sorted(LINK_PLANS))
@pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("plan_name", sorted(CRASH_PLANS))
def test_cell(inputs, sched_name, plan_name, link_name):
    result = run_convex_hull_consensus(
        inputs,
        1,
        0.2,
        fault_plan=CRASH_PLANS[plan_name],
        scheduler=SCHEDULERS[sched_name](),
        input_bounds=(-1.0, 1.0),
        link_faults=LINK_PLANS[link_name](),
    )
    report = check_all(result.trace)
    assert report.ok, (sched_name, plan_name, link_name)


def test_crash_reduces_decided_count(inputs):
    baseline = run_convex_hull_consensus(inputs, 1, 0.2, seed=1)
    crashed = run_convex_hull_consensus(
        inputs, 1, 0.2, fault_plan=CRASH_PLANS["round1-mid-broadcast"], seed=1
    )
    assert len(baseline.report.decided) == 5
    assert len(crashed.report.decided) == 4


def test_crashed_endpoint_never_delivers_app_frames(inputs):
    # PR-5 keeps a crashed process's transport endpoint alive as channel
    # *infrastructure*: frames addressed to it are consumed and retired
    # at the channel layer (so retransmission storms stop and the run
    # terminates), but the dead application never acknowledges or
    # processes them.  Regression guards: the drops are counted, the
    # application-level delivery count excludes them, and the crashed
    # process's protocol state stays frozen at its crash point.
    from repro.geometry.cache import PERF

    drops0 = PERF.crashed_app_drops
    result = run_convex_hull_consensus(
        inputs,
        1,
        0.2,
        fault_plan=CRASH_PLANS["round0-mid-broadcast"],
        seed=1,
        input_bounds=(-1.0, 1.0),
        link_faults=LINK_PLANS["lossy"](),
    )
    assert PERF.crashed_app_drops > drops0  # frames were retired, not acked
    # The channel retired those frames without the app seeing them.
    assert result.report.messages_delivered < result.report.messages_sent
    proc = result.trace.processes[4]
    assert 4 not in result.report.decided
    assert not proc.decided
    # Frozen at the crash: no state beyond the crash round was computed.
    assert all(t <= 1 for t in proc.states)
    report = check_all(result.trace)
    assert report.ok
