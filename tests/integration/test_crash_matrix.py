"""Systematic crash/scheduler sweep: the paper's properties must hold in
every cell of the (crash timing) x (scheduler) matrix."""

import numpy as np
import pytest

from repro.core.invariants import check_all
from repro.core.runner import run_convex_hull_consensus
from repro.runtime.faults import FaultPlan
from repro.runtime.scheduler import (
    BurstyScheduler,
    FifoFairScheduler,
    RandomScheduler,
    TargetedDelayScheduler,
)

SCHEDULERS = {
    "random": lambda: RandomScheduler(seed=5),
    "fifo": lambda: FifoFairScheduler(),
    "bursty": lambda: BurstyScheduler(seed=5),
    "starve-victim": lambda: TargetedDelayScheduler(slow=frozenset({4}), seed=5),
}

CRASH_PLANS = {
    "none": FaultPlan.none(),
    "silent": FaultPlan.silent_faulty([4]),
    "round0-early": FaultPlan.crash_at({4: (0, 0)}),
    "round0-mid-broadcast": FaultPlan.crash_at({4: (0, 2)}),
    "round1-mid-broadcast": FaultPlan.crash_at({4: (1, 1)}),
    "round2": FaultPlan.crash_at({4: (2, 3)}),
}


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(77)
    pts = rng.uniform(-1.0, 1.0, size=(5, 1))
    pts[4] = 0.95  # faulty holds an extreme (incorrect) input
    return pts


@pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("plan_name", sorted(CRASH_PLANS))
def test_cell(inputs, sched_name, plan_name):
    result = run_convex_hull_consensus(
        inputs,
        1,
        0.2,
        fault_plan=CRASH_PLANS[plan_name],
        scheduler=SCHEDULERS[sched_name](),
        input_bounds=(-1.0, 1.0),
    )
    report = check_all(result.trace)
    assert report.ok, (sched_name, plan_name)


def test_crash_reduces_decided_count(inputs):
    baseline = run_convex_hull_consensus(inputs, 1, 0.2, seed=1)
    crashed = run_convex_hull_consensus(
        inputs, 1, 0.2, fault_plan=CRASH_PLANS["round1-mid-broadcast"], seed=1
    )
    assert len(baseline.report.decided) == 5
    assert len(crashed.report.decided) == 4
