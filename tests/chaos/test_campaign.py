"""Campaign orchestration: grids, cells, triage, JSON-safety."""

import json

import pytest

from repro.chaos import (
    LABEL_BELOW,
    FuzzConfig,
    campaign_tasks,
    fuzz_cell,
    generate_case,
    run_campaign,
)

BELOW_1D = FuzzConfig(profile=LABEL_BELOW, d_choices=(1,), f_choices=(1,))


class TestCampaignTasks:
    def test_keys_unique_and_deterministic(self):
        config = FuzzConfig(profile="mixed")
        a = campaign_tasks(config, 16, seed0=0)
        b = campaign_tasks(config, 16, seed0=0)
        assert [t.key for t in a] == [t.key for t in b]
        assert len({t.key for t in a}) == 16

    def test_params_are_json_safe(self):
        for task in campaign_tasks(FuzzConfig(profile="mixed"), 8):
            json.dumps(dict(task.params))


class TestFuzzCell:
    def test_row_is_json_safe(self):
        case = generate_case(BELOW_1D, 4).to_json_dict()
        row = fuzz_cell(case=case)
        json.dumps(row)

    def test_violating_cell_embeds_bundle(self):
        # Find a violating below-bound seed, then check its cell row.
        for seed in range(16):
            case = generate_case(BELOW_1D, seed).to_json_dict()
            row = fuzz_cell(case=case, shrink_max_runs=100)
            if row["status"] == "violation":
                assert row["bundle"] is not None
                assert row["bundle"]["fingerprint"]
                assert row["shrink"] is not None
                return
        pytest.fail("no violating seed found for the cell test")

    def test_shrink_can_be_disabled(self):
        for seed in range(16):
            case = generate_case(BELOW_1D, seed).to_json_dict()
            row = fuzz_cell(case=case, shrink_violations=False)
            if row["status"] == "violation":
                assert row["bundle"] is not None
                assert row["shrink"] is None
                return
        pytest.fail("no violating seed found for the cell test")


class TestCampaignTriage:
    @pytest.fixture(scope="class")
    def summary(self, tmp_path_factory):
        return run_campaign(
            BELOW_1D,
            6,
            seed0=0,
            run_dir=tmp_path_factory.mktemp("campaign"),
            shrink_violations=False,
        )

    def test_below_bound_findings_are_expected(self, summary):
        assert summary.violations  # below the bound something must break
        assert summary.unexpected_violations == []
        assert summary.expected_violations == summary.violations

    def test_triage_table_renders(self, summary):
        table = summary.triage_table()
        assert "Fuzz campaign triage" in table
        assert LABEL_BELOW in table

    def test_rows_follow_grid_order(self, summary):
        seeds = [row["seed"] for row in summary.rows]
        assert seeds == sorted(seeds)
