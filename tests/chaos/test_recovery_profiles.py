"""Recovery chaos profiles: sampling, triage, shrinking, bundle replay."""

import numpy as np

from repro.chaos.generator import (
    EXPECTED_VIOLATION_LABELS,
    LABEL_RECOVERY_AMNESIA,
    LABEL_RECOVERY_LEGAL,
    LABEL_RECOVERY_STORM,
    RECOVERY_LABELS,
    FuzzConfig,
    build_plan,
    generate_case,
)
from repro.chaos.runner import outcome_fingerprint, replay_case, run_case
from repro.chaos.shrinker import _drop_pid, _with_recoveries
from repro.core.config import required_processes
from repro.runtime.faults import AMNESIA, DURABLE, DURABILITY_MODES


class TestSampling:
    def test_generation_is_deterministic(self):
        config = FuzzConfig(profile=LABEL_RECOVERY_LEGAL)
        assert generate_case(config, 11) == generate_case(config, 11)

    def test_every_faulty_pid_crashes_and_recovers(self):
        for profile in RECOVERY_LABELS:
            config = FuzzConfig(profile=profile)
            for seed in range(8):
                case = generate_case(config, seed)
                plan = build_plan(case)
                assert set(plan.crashes) == set(plan.faulty), (profile, seed)
                assert set(plan.recoveries) == set(plan.faulty), (profile, seed)
                for spec in plan.recoveries.values():
                    assert 1 <= spec.recover_at <= 50
                    assert spec.durability in DURABILITY_MODES

    def test_durability_matches_profile(self):
        for seed in range(8):
            legal = build_plan(
                generate_case(FuzzConfig(profile=LABEL_RECOVERY_LEGAL), seed)
            )
            assert all(
                s.durability == DURABLE for s in legal.recoveries.values()
            )
            amnesia = build_plan(
                generate_case(FuzzConfig(profile=LABEL_RECOVERY_AMNESIA), seed)
            )
            assert all(
                s.durability == AMNESIA for s in amnesia.recoveries.values()
            )

    def test_recovery_cases_stay_at_legal_n(self):
        for profile in RECOVERY_LABELS:
            for seed in range(8):
                case = generate_case(FuzzConfig(profile=profile), seed)
                assert case.n >= required_processes(case.d, case.f)
                assert case.enforce_resilience

    def test_legacy_profiles_sample_no_recoveries(self):
        # The recovery draws are appended after every legacy draw, so the
        # historical profiles regenerate their exact original cases —
        # in particular, never a recovery.
        for profile in ("legal", "below-bound", "beyond-bound", "lossy"):
            for seed in range(6):
                case = generate_case(FuzzConfig(profile=profile), seed)
                assert not case.fault_plan.get("recoveries")

    def test_triage_labels(self):
        assert LABEL_RECOVERY_LEGAL not in EXPECTED_VIOLATION_LABELS
        assert LABEL_RECOVERY_AMNESIA in EXPECTED_VIOLATION_LABELS
        assert LABEL_RECOVERY_STORM in EXPECTED_VIOLATION_LABELS


class TestExecution:
    def test_recovery_legal_slice_has_zero_violations(self):
        # The in-repo slice of the acceptance campaign: durable recovery
        # at legal (n, f) must uphold every paper property.
        config = FuzzConfig(profile=LABEL_RECOVERY_LEGAL)
        for seed in range(10):
            outcome = run_case(generate_case(config, seed))
            assert outcome.status == "ok", (seed, outcome.violation)

    def test_durable_replay_is_fingerprint_identical(self):
        # The acceptance replay test: re-running a recovery case under
        # its recorded (plan, schedule) reproduces the execution
        # byte-for-byte — same schedule, same counters, same verdict.
        config = FuzzConfig(profile=LABEL_RECOVERY_LEGAL)
        case = generate_case(config, 3)
        recorded = run_case(case)
        assert recorded.status == "ok"
        replayed = replay_case(case, case.fault_plan, recorded.schedule)
        assert outcome_fingerprint(replayed) == outcome_fingerprint(recorded)

    def test_durable_replay_decisions_are_byte_identical(self):
        from repro.chaos.generator import build_inputs, build_scheduler
        from repro.core.runner import run_convex_hull_consensus

        case = generate_case(FuzzConfig(profile=LABEL_RECOVERY_LEGAL), 3)
        inputs, bounds = build_inputs(case)

        def execute():
            return run_convex_hull_consensus(
                inputs,
                case.f,
                case.eps,
                fault_plan=build_plan(case),
                scheduler=build_scheduler(case),
                seed=case.scheduler_seed,
                input_bounds=bounds,
            )

        first, second = execute(), execute()
        assert sorted(first.trace.outputs()) == sorted(second.trace.outputs())
        for pid, poly in first.trace.outputs().items():
            np.testing.assert_array_equal(
                poly.vertices, second.trace.outputs()[pid].vertices
            )


class TestShrinkerThreading:
    def test_drop_pid_also_drops_its_recovery(self):
        plan_obj = {
            "faulty": [1, 4],
            "crashes": {"1": [0, 0], "4": [1, 2]},
            "incorrect_inputs": None,
            "recoveries": {"1": [5, "durable"], "4": [9, "amnesia"]},
        }
        out = _drop_pid(plan_obj, 4)
        assert out["faulty"] == [1]
        assert out["crashes"] == {"1": [0, 0]}
        assert out["recoveries"] == {"1": [5, "durable"]}

    def test_with_recoveries_replaces_only_recoveries(self):
        plan_obj = {
            "faulty": [4],
            "crashes": {"4": [1, 2]},
            "incorrect_inputs": None,
            "recoveries": {"4": [9, "amnesia"]},
        }
        out = _with_recoveries(plan_obj, {})
        assert out["recoveries"] == {}
        assert out["crashes"] == plan_obj["crashes"]

    def test_shrunk_plan_objs_rebuild_as_fault_plans(self):
        from repro.analysis.serialization import fault_plan_from_obj

        case = generate_case(FuzzConfig(profile=LABEL_RECOVERY_STORM), 5)
        plan_obj = dict(case.fault_plan)
        rebuilt = fault_plan_from_obj(plan_obj)
        assert rebuilt.recoveries
        for pid in sorted(rebuilt.faulty):
            reduced = fault_plan_from_obj(_drop_pid(plan_obj, pid))
            assert pid not in reduced.recoveries
            reduced.validate(case.n)
