"""The chaos engine's self-test (ISSUE acceptance criteria).

Two halves, mirroring Theorem 2's two directions:

* at ``n = (d+2)f`` (one below the bound) the fuzzer must *find* a
  resilience violation within a bounded budget, *shrink* it to a locally
  minimal counterexample, and emit a repro bundle that replays
  bit-identically;
* at ``n >= (d+2)f + 1`` with ``|F| <= f`` a whole campaign must report
  zero violations — the paper's guarantee, checked online on every
  delivery and post-hoc on every completed run.
"""

import json

import pytest

from repro.chaos import (
    LABEL_BELOW,
    LABEL_LEGAL,
    FuzzConfig,
    hunt,
    load_bundle,
    make_bundle,
    replay_bundle,
    run_campaign,
    write_bundle,
)

HUNT_BUDGET = 24
SHRINK_BUDGET = 300

BELOW = FuzzConfig(profile=LABEL_BELOW, d_choices=(1, 2), f_choices=(1,))
LEGAL = FuzzConfig(
    profile=LABEL_LEGAL,
    d_choices=(1,),
    f_choices=(1,),
    max_extra_processes=0,  # pin n exactly at (d+2)f + 1
)


@pytest.fixture(scope="module")
def found():
    result = hunt(
        BELOW, budget=HUNT_BUDGET, seed0=0, shrink_max_runs=SHRINK_BUDGET
    )
    assert result is not None, (
        f"fuzzer failed to find a violation at n=(d+2)f within "
        f"{HUNT_BUDGET} cases"
    )
    return result


class TestBelowBoundHunt:
    def test_violation_found_within_budget(self, found):
        outcome, _, tried = found
        assert tried <= HUNT_BUDGET
        assert outcome.status == "violation"
        assert outcome.case.label == LABEL_BELOW

    def test_shrink_reaches_local_minimum(self, found):
        outcome, shrink_result, _ = found
        assert shrink_result is not None
        assert shrink_result.minimal
        assert shrink_result.runs <= SHRINK_BUDGET
        # Shrinking never loses the violation kind.
        assert shrink_result.violation.kind == outcome.violation.kind
        # And never grows the counterexample.
        assert len(shrink_result.schedule) <= len(outcome.schedule)

    def test_bundle_replays_bit_identically(self, found, tmp_path):
        outcome, shrink_result, _ = found
        bundle = make_bundle(outcome, shrink_result=shrink_result)
        path = write_bundle(bundle, tmp_path / "counterexample.json")
        loaded = load_bundle(path)
        replayed, identical = replay_bundle(loaded)
        assert identical, "replay diverged from the recorded execution"
        assert replayed.violation.kind == outcome.violation.kind

    def test_bundle_file_is_byte_stable(self, found, tmp_path):
        # Writing the same counterexample twice produces identical bytes —
        # bundles are diffable artefacts, not just semantically equal.
        outcome, shrink_result, _ = found
        bundle = make_bundle(outcome, shrink_result=shrink_result)
        a = write_bundle(bundle, tmp_path / "a.json").read_bytes()
        b = write_bundle(
            make_bundle(outcome, shrink_result=shrink_result),
            tmp_path / "b.json",
        ).read_bytes()
        assert a == b

    def test_bundle_is_plain_json(self, found, tmp_path):
        outcome, shrink_result, _ = found
        bundle = make_bundle(outcome, shrink_result=shrink_result)
        round_tripped = json.loads(json.dumps(bundle))
        assert round_tripped == bundle


class TestLegalCampaign:
    def test_zero_violations_at_the_bound(self, tmp_path):
        summary = run_campaign(
            LEGAL,
            10,
            seed0=0,
            run_dir=tmp_path / "run",
            bundle_dir=tmp_path / "bundles",
        )
        assert summary.violations == []
        assert summary.errors == 0
        assert summary.ok == 10
        assert summary.bundle_paths == []

    def test_campaign_resume_reuses_everything(self, tmp_path):
        run_dir = tmp_path / "run"
        first = run_campaign(LEGAL, 6, seed0=100, run_dir=run_dir)
        second = run_campaign(LEGAL, 6, seed0=100, run_dir=run_dir, resume=True)
        assert second.report.reused == 6
        assert second.report.executed == 0
        assert [r["case_id"] for r in second.rows] == [
            r["case_id"] for r in first.rows
        ]
