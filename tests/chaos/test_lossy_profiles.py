"""Chaos-engine coverage of the link-fault profiles.

The three transport profiles pin the contract from both sides: ``lossy``
and ``partition-heal`` must produce zero violations at legal configs
(the transport earns the channel model back), ``partition-forever`` must
*reliably* produce a termination finding via the delivery-budget abort
(graceful degradation, not a hang), and raw mode must trip the
delivery-boundary oracle (the violations are real and the transport —
not luck — is what removes them).
"""

import json

import pytest

from repro.chaos import (
    EXPECTED_VIOLATION_LABELS,
    FuzzCase,
    FuzzConfig,
    build_link_plan,
    generate_case,
    make_bundle,
    outcome_fingerprint,
    replay_bundle,
    run_campaign,
    run_case,
)
from repro.chaos.generator import (
    LABEL_LOSSY,
    LABEL_PARTITION_FOREVER,
    LABEL_PARTITION_HEAL,
)
from repro.core.config import required_processes


class TestGenerator:
    @pytest.mark.parametrize(
        "profile",
        [LABEL_LOSSY, LABEL_PARTITION_HEAL, LABEL_PARTITION_FOREVER],
    )
    def test_emits_link_plans_at_legal_configs(self, profile):
        for seed in range(10):
            case = generate_case(FuzzConfig(profile=profile), seed)
            assert case.label == profile
            assert case.link_faults is not None
            plan = build_link_plan(case)
            assert plan is not None and plan.faulty
            # The process side stays at or above the Theorem 2 bound.
            assert case.n >= required_processes(case.d, case.f)
            assert case.enforce_resilience

    def test_lossy_rates_within_contract(self):
        for seed in range(20):
            case = generate_case(FuzzConfig(profile=LABEL_LOSSY), seed)
            plan = build_link_plan(case)
            specs = [plan.default, *plan.links.values()]
            assert all(s.loss <= 0.3 and s.dup <= 0.2 for s in specs)

    def test_partition_forever_never_heals_and_keeps_processes_clean(self):
        for seed in range(10):
            case = generate_case(
                FuzzConfig(profile=LABEL_PARTITION_FOREVER), seed
            )
            plan = build_link_plan(case)
            assert plan.links  # a cut exists
            assert all(
                heal is None
                for spec in plan.links.values()
                for (_start, heal) in spec.partitions
            )
            assert case.fault_plan.get("faulty", []) == []

    def test_case_json_roundtrip_with_link_faults(self):
        case = generate_case(FuzzConfig(profile=LABEL_LOSSY), 3)
        rebuilt = FuzzCase.from_json_dict(
            json.loads(json.dumps(case.to_json_dict()))
        )
        assert rebuilt == case
        assert build_link_plan(rebuilt) == build_link_plan(case)

    def test_legacy_case_json_still_loads(self):
        # Pre-transport bundles have no link_faults/reliable_transport keys.
        case = generate_case(FuzzConfig(profile="legal"), 0)
        data = case.to_json_dict()
        del data["link_faults"]
        del data["reliable_transport"]
        rebuilt = FuzzCase.from_json_dict(data)
        assert rebuilt.link_faults is None
        assert rebuilt.reliable_transport is True

    def test_old_profiles_unchanged_by_link_sampling(self):
        # The link-fault draws happen after all legacy draws, so legacy
        # (config, seed) pairs regenerate their historical cases.
        case = generate_case(FuzzConfig(profile="legal"), 7)
        assert case.link_faults is None
        assert case.reliable_transport


class TestOutcomes:
    @pytest.mark.parametrize("seed", range(4))
    def test_lossy_cases_pass(self, seed):
        outcome = run_case(generate_case(FuzzConfig(profile=LABEL_LOSSY), seed))
        assert outcome.status == "ok", (outcome.violation, outcome.error)

    @pytest.mark.parametrize("seed", range(3))
    def test_partition_heal_cases_pass(self, seed):
        outcome = run_case(
            generate_case(FuzzConfig(profile=LABEL_PARTITION_HEAL), seed)
        )
        assert outcome.status == "ok", (outcome.violation, outcome.error)

    @pytest.mark.parametrize("seed", range(3))
    def test_partition_forever_is_expected_termination_finding(self, seed):
        case = generate_case(
            FuzzConfig(profile=LABEL_PARTITION_FOREVER), seed
        )
        outcome = run_case(case)
        assert outcome.status == "violation"
        assert outcome.violation.kind == "termination"
        assert "budget" in outcome.violation.detail
        assert case.label in EXPECTED_VIOLATION_LABELS

    def test_raw_mode_trips_channel_contract(self):
        config = FuzzConfig(profile=LABEL_LOSSY, reliable_transport=False)
        outcome = run_case(generate_case(config, 0))
        assert outcome.status == "violation"
        assert outcome.violation.kind == "channel-contract"

    def test_lossy_violation_bundle_replays_bit_identically(self):
        config = FuzzConfig(profile=LABEL_LOSSY, reliable_transport=False)
        outcome = run_case(generate_case(config, 1))
        assert outcome.status == "violation"
        bundle = make_bundle(outcome)
        replayed, identical = replay_bundle(bundle)
        assert identical
        assert outcome_fingerprint(replayed) == outcome_fingerprint(outcome)


class TestCampaignTriage:
    def test_lossy_campaign_zero_unexpected(self):
        summary = run_campaign(
            FuzzConfig(profile=LABEL_LOSSY),
            4,
            shrink_violations=False,
        )
        assert summary.ok == 4
        assert not summary.unexpected_violations
        assert not summary.errors

    def test_partition_forever_campaign_counts_expected(self):
        summary = run_campaign(
            FuzzConfig(profile=LABEL_PARTITION_FOREVER),
            2,
            shrink_violations=False,
        )
        assert len(summary.expected_violations) == 2
        assert not summary.unexpected_violations
