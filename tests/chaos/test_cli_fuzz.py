"""``repro fuzz`` command-line surface."""

import json

from repro.cli import main


class TestFuzzCampaignCommand:
    def test_legal_campaign_exits_zero(self, capsys):
        code = main(
            ["fuzz", "--profile", "legal", "--iterations", "3", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Fuzz campaign triage" in out
        assert "unexpected=0" in out

    def test_checkpoint_and_resume(self, capsys, tmp_path):
        run_dir = str(tmp_path / "run")
        args = [
            "fuzz", "--profile", "legal", "--iterations", "3",
            "--run-dir", run_dir,
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(
            ["fuzz", "--profile", "legal", "--iterations", "3",
             "--resume", run_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "reused=3" in out


class TestHuntAndReplayCommands:
    def test_until_violation_writes_bundle_and_replays(self, capsys, tmp_path):
        bundle_dir = tmp_path / "bundles"
        code = main(
            [
                "fuzz", "--until-violation", "--profile", "below-bound",
                "--iterations", "24", "--bundle-dir", str(bundle_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # found a violation => non-zero, CI-friendly
        assert "violation after" in out
        bundles = sorted(bundle_dir.glob("*.json"))
        assert bundles, "hunt did not write a repro bundle"
        # Bundle is valid JSON with the pinned execution artefacts.
        data = json.loads(bundles[0].read_text())
        assert data["fingerprint"]

        replay_code = main(["fuzz", "--replay", str(bundles[0])])
        replay_out = capsys.readouterr().out
        assert replay_code == 0
        assert "fingerprint=match" in replay_out
