"""Byzantine chaos profiles: sampling, the bound gap, shrinking, replay.

The four profiles probe the crash-vs-Byzantine resilience gap from both
sides:

* ``byzantine-legal`` — BCC at ``max(3f+1, (d+2)f+1)`` with at most
  ``f`` adversaries: zero findings expected (the in-repo slice of the
  100-case acceptance campaign);
* ``byzantine-vs-crash`` — the crash algorithm at its *own* bound
  facing the same adversary: findings expected, because the crash bound
  is simply not enough against equivocation — that is the gap;
* ``byzantine-beyond-bound`` — ``f+1`` adversaries against BCC;
* ``byzantine-below-bound`` — one process short of the Byzantine bound.
"""

import numpy as np

from repro.chaos.bundle import load_bundle, make_bundle, replay_bundle, write_bundle
from repro.chaos.campaign import hunt
from repro.chaos.generator import (
    BYZANTINE_LABELS,
    EXPECTED_VIOLATION_LABELS,
    LABEL_BYZ_BELOW,
    LABEL_BYZ_BEYOND,
    LABEL_BYZ_LEGAL,
    LABEL_BYZ_VS_CRASH,
    FuzzCase,
    FuzzConfig,
    build_plan,
    generate_case,
)
from repro.chaos.runner import outcome_fingerprint, replay_case, run_case
from repro.chaos.shrinker import _drop_pid, _with_byzantine, shrink
from repro.core.config import byzantine_required_processes, required_processes
from repro.runtime.faults import BYZANTINE_BEHAVIORS


class TestSampling:
    def test_generation_is_deterministic(self):
        for profile in BYZANTINE_LABELS + ("byzantine-mixed",):
            config = FuzzConfig(profile=profile)
            a, b = generate_case(config, 17), generate_case(config, 17)
            assert a == b, profile
            assert a.to_json_dict() == b.to_json_dict()

    def test_algorithm_field_back_compat(self):
        # Bundles written before the Byzantine axis carry no
        # ``algorithm`` key; they must load as crash-model CC cases.
        case = generate_case(FuzzConfig(profile="legal"), 3)
        obj = case.to_json_dict()
        assert obj["algorithm"] == "cc"
        del obj["algorithm"]
        assert FuzzCase.from_json_dict(obj) == case

    def test_byzantine_counts_match_profile(self):
        for seed in range(8):
            legal = generate_case(FuzzConfig(profile=LABEL_BYZ_LEGAL), seed)
            plan = build_plan(legal)
            assert 1 <= len(plan.byzantine) <= legal.f
            assert set(plan.byzantine) == set(plan.faulty)
            assert not plan.crashes
            assert legal.algorithm == "bcc"
            assert legal.n >= byzantine_required_processes(legal.d, legal.f)
            assert legal.enforce_resilience

            beyond = generate_case(FuzzConfig(profile=LABEL_BYZ_BEYOND), seed)
            assert len(build_plan(beyond).byzantine) == min(
                beyond.f + 1, beyond.n - 1
            )
            assert not beyond.enforce_resilience

            below = generate_case(FuzzConfig(profile=LABEL_BYZ_BELOW), seed)
            assert below.n == byzantine_required_processes(below.d, below.f) - 1
            assert not below.enforce_resilience

    def test_vs_crash_runs_cc_at_the_crash_bound(self):
        # The gap probe: algorithm stays "cc", n satisfies only the
        # crash bound, and the adversary count stays within f — so the
        # runner's resilience check passes and any finding is a genuine
        # consequence of the weaker fault model.
        for seed in range(8):
            case = generate_case(FuzzConfig(profile=LABEL_BYZ_VS_CRASH), seed)
            assert case.algorithm == "cc"
            assert case.n >= required_processes(case.d, case.f)
            assert len(build_plan(case).byzantine) <= case.f
            assert case.enforce_resilience

    def test_behavior_specs_are_well_formed(self):
        for seed in range(12):
            case = generate_case(FuzzConfig(profile="byzantine-mixed"), seed)
            for spec in build_plan(case).byzantine.values():
                assert set(spec.behaviors) <= set(BYZANTINE_BEHAVIORS)
                assert 0 < spec.rate <= 1.0
                assert spec.magnitude > 0

    def test_legacy_profiles_sample_no_byzantine(self):
        # Byzantine draws are appended after every legacy draw, so the
        # historical profiles regenerate their exact original cases.
        for profile in ("legal", "below-bound", "lossy", "recovery-legal"):
            for seed in range(6):
                case = generate_case(FuzzConfig(profile=profile), seed)
                assert not case.fault_plan.get("byzantine")
                assert case.algorithm == "cc"

    def test_triage_labels(self):
        assert LABEL_BYZ_LEGAL not in EXPECTED_VIOLATION_LABELS
        assert LABEL_BYZ_BELOW in EXPECTED_VIOLATION_LABELS
        assert LABEL_BYZ_BEYOND in EXPECTED_VIOLATION_LABELS
        assert LABEL_BYZ_VS_CRASH in EXPECTED_VIOLATION_LABELS


class TestExecution:
    def test_byzantine_legal_slice_has_zero_violations(self):
        # The in-repo slice of the acceptance campaign: BCC at its bound
        # with a within-bound adversary upholds every applicable
        # property.
        config = FuzzConfig(profile=LABEL_BYZ_LEGAL)
        for seed in range(8):
            outcome = run_case(generate_case(config, seed))
            assert outcome.status == "ok", (seed, outcome.violation)

    def test_vs_crash_hunt_finds_and_shrinks_the_gap(self):
        # The bound-gap headline: the crash algorithm under a Byzantine
        # adversary breaks within a small budget, and the counterexample
        # shrinks to a locally-minimal one.
        found = hunt(
            FuzzConfig(profile=LABEL_BYZ_VS_CRASH),
            budget=12,
            shrink_max_runs=120,
        )
        assert found is not None, "crash bound survived a Byzantine hunt"
        outcome, shrunk, _tried = found
        assert outcome.violation is not None
        assert shrunk is not None
        assert shrunk.violation.kind == outcome.violation.kind
        assert shrunk.schedule_len <= len(outcome.schedule)

    def test_byzantine_replay_is_fingerprint_identical(self):
        config = FuzzConfig(profile=LABEL_BYZ_LEGAL)
        case = generate_case(config, 2)
        recorded = run_case(case)
        assert recorded.status == "ok"
        replayed = replay_case(case, case.fault_plan, recorded.schedule)
        assert outcome_fingerprint(replayed) == outcome_fingerprint(recorded)

    def test_violation_bundle_round_trips_bit_identically(self, tmp_path):
        # The acceptance artifact: a Byzantine counterexample bundle
        # written to disk, loaded back, and replayed must verify.
        found = hunt(
            FuzzConfig(profile=LABEL_BYZ_VS_CRASH),
            budget=12,
            shrink_violations=False,
        )
        assert found is not None
        outcome = found[0]
        bundle = make_bundle(outcome)
        path = write_bundle(bundle, tmp_path / "byz-gap.json")
        loaded = load_bundle(path)
        replayed, verified = replay_bundle(loaded)
        assert verified
        assert outcome_fingerprint(replayed) == bundle["fingerprint"]

    def test_byzantine_decisions_are_byte_identical_across_runs(self):
        from repro.chaos.generator import build_inputs, build_scheduler
        from repro.core.runner import run_convex_hull_consensus

        case = generate_case(FuzzConfig(profile=LABEL_BYZ_LEGAL), 4)
        inputs, bounds = build_inputs(case)

        def execute():
            return run_convex_hull_consensus(
                inputs,
                case.f,
                case.eps,
                algorithm=case.algorithm,
                fault_plan=build_plan(case),
                scheduler=build_scheduler(case),
                seed=case.scheduler_seed,
                input_bounds=bounds,
            )

        first, second = execute(), execute()
        assert sorted(first.trace.outputs()) == sorted(second.trace.outputs())
        for pid, poly in first.trace.outputs().items():
            np.testing.assert_array_equal(
                poly.vertices, second.trace.outputs()[pid].vertices
            )


class TestShrinkerThreading:
    def test_drop_pid_also_drops_its_byzantine_spec(self):
        plan_obj = {
            "faulty": [1, 4],
            "crashes": {},
            "incorrect_inputs": None,
            "recoveries": {},
            "byzantine": {
                "1": {"behaviors": ["forge"], "rate": 1.0},
                "4": {"behaviors": ["omit"], "rate": 0.5},
            },
        }
        out = _drop_pid(plan_obj, 4)
        assert out["faulty"] == [1]
        assert out["byzantine"] == {"1": {"behaviors": ["forge"], "rate": 1.0}}

    def test_with_byzantine_replaces_only_byzantine(self):
        plan_obj = {
            "faulty": [2],
            "crashes": {},
            "incorrect_inputs": None,
            "recoveries": {},
            "byzantine": {"2": {"behaviors": ["forge", "omit"]}},
        }
        out = _with_byzantine(plan_obj, {"2": {"behaviors": ["forge"]}})
        assert out["byzantine"] == {"2": {"behaviors": ["forge"]}}
        assert out["faulty"] == plan_obj["faulty"]
        assert plan_obj["byzantine"] == {"2": {"behaviors": ["forge", "omit"]}}

    def test_shrunk_plan_objs_rebuild_as_fault_plans(self):
        from repro.analysis.serialization import fault_plan_from_obj

        case = generate_case(FuzzConfig(profile=LABEL_BYZ_BEYOND), 5)
        plan_obj = dict(case.fault_plan)
        rebuilt = fault_plan_from_obj(plan_obj)
        assert rebuilt.byzantine
        for pid in sorted(rebuilt.faulty):
            reduced = fault_plan_from_obj(_drop_pid(plan_obj, pid))
            assert pid not in reduced.byzantine

    def test_shrink_demotes_and_strips_behaviors(self):
        # Pass 1b end to end: on a vs-crash counterexample the shrinker
        # must leave a *Byzantine* witness (demotion to plain crash
        # would mask the gap, so the demotion candidate fails and
        # behavior-dropping takes over).
        found = hunt(
            FuzzConfig(profile=LABEL_BYZ_VS_CRASH),
            budget=12,
            shrink_max_runs=150,
        )
        assert found is not None
        _outcome, shrunk, _ = found
        assert shrunk is not None
        final_byz = shrunk.plan_obj.get("byzantine", {})
        assert final_byz, "shrinker demoted every Byzantine process"
        for spec in final_byz.values():
            assert len(spec["behaviors"]) >= 1
