"""Fuzz-case generation: determinism, JSON round-trips, profile semantics."""

import json

import numpy as np
import pytest

from repro.chaos import (
    LABEL_BELOW,
    LABEL_BEYOND,
    LABEL_LEGAL,
    FuzzCase,
    FuzzConfig,
    build_inputs,
    build_plan,
    build_scheduler,
    generate_case,
)
from repro.core.config import required_processes
from repro.runtime.scheduler import Scheduler


class TestDeterminism:
    def test_same_seed_same_case(self):
        config = FuzzConfig(profile="mixed")
        for seed in range(20):
            a = generate_case(config, seed)
            b = generate_case(config, seed)
            assert a == b
            assert a.to_json_dict() == b.to_json_dict()

    def test_different_seeds_differ(self):
        config = FuzzConfig(profile="mixed")
        cases = {json.dumps(generate_case(config, s).to_json_dict(), sort_keys=True)
                 for s in range(30)}
        assert len(cases) == 30  # case_id embeds the seed at minimum

    def test_inputs_deterministic(self):
        config = FuzzConfig(profile=LABEL_LEGAL)
        case = generate_case(config, 5)
        points_a, bounds_a = build_inputs(case)
        points_b, bounds_b = build_inputs(case)
        np.testing.assert_array_equal(points_a, points_b)
        assert bounds_a == bounds_b


class TestJsonRoundTrip:
    def test_case_round_trip(self):
        config = FuzzConfig(profile="mixed")
        for seed in range(10):
            case = generate_case(config, seed)
            wire = json.loads(json.dumps(case.to_json_dict()))
            assert FuzzCase.from_json_dict(wire) == case

    def test_config_round_trip(self):
        config = FuzzConfig(profile=LABEL_BEYOND, d_choices=(2,), f_choices=(1, 2))
        wire = json.loads(json.dumps(config.to_json_dict()))
        assert FuzzConfig.from_json_dict(wire) == config


class TestProfiles:
    def test_legal_cases_respect_bound(self):
        config = FuzzConfig(profile=LABEL_LEGAL)
        for seed in range(25):
            case = generate_case(config, seed)
            assert case.label == LABEL_LEGAL
            assert case.n >= required_processes(case.d, case.f)
            assert len(case.fault_plan["faulty"]) <= case.f
            assert case.enforce_resilience

    def test_below_bound_cases_sit_one_below(self):
        config = FuzzConfig(profile=LABEL_BELOW)
        for seed in range(25):
            case = generate_case(config, seed)
            assert case.n == required_processes(case.d, case.f) - 1
            assert not case.enforce_resilience
            # The probe must actually stress the boundary: at least one
            # crash whenever any process is faulty.
            if case.fault_plan["faulty"]:
                assert case.fault_plan["crashes"]

    def test_beyond_bound_cases_exceed_f(self):
        config = FuzzConfig(profile=LABEL_BEYOND)
        for seed in range(25):
            case = generate_case(config, seed)
            assert case.n >= required_processes(case.d, case.f)
            assert len(case.fault_plan["faulty"]) == min(case.f + 1, case.n - 1)

    def test_mixed_profile_emits_all_labels(self):
        config = FuzzConfig(profile="mixed")
        labels = {generate_case(config, s).label for s in range(60)}
        assert labels == {LABEL_LEGAL, LABEL_BELOW, LABEL_BEYOND}


class TestValidation:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            FuzzConfig(profile="chaotic-evil")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            FuzzConfig(workloads=("gaussian", "nope"))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            FuzzConfig(schedulers=("random", "nope"))

    def test_built_plan_is_validated(self):
        config = FuzzConfig(profile="mixed")
        for seed in range(10):
            case = generate_case(config, seed)
            plan = build_plan(case)
            assert set(plan.crashes) <= set(plan.faulty)
            assert all(0 <= pid < case.n for pid in plan.faulty)

    def test_built_scheduler_is_a_scheduler(self):
        config = FuzzConfig(profile="mixed")
        for seed in range(10):
            sched = build_scheduler(generate_case(config, seed))
            assert isinstance(sched, Scheduler)
