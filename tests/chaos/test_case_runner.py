"""One-case execution: recording, classification, replay, fingerprints."""

import pytest

from repro.chaos import (
    LABEL_BELOW,
    LABEL_LEGAL,
    FuzzConfig,
    generate_case,
    outcome_fingerprint,
    replay_case,
    run_case,
)

LEGAL_1D = FuzzConfig(profile=LABEL_LEGAL, d_choices=(1,), f_choices=(1,))
BELOW_1D = FuzzConfig(profile=LABEL_BELOW, d_choices=(1,), f_choices=(1,))


@pytest.fixture(scope="module")
def legal_outcome():
    return run_case(generate_case(LEGAL_1D, 0))


class TestRunCase:
    def test_legal_case_passes(self, legal_outcome):
        assert legal_outcome.ok
        assert legal_outcome.violation is None
        assert legal_outcome.error is None

    def test_schedule_is_recorded(self, legal_outcome):
        assert len(legal_outcome.schedule) > 0
        assert legal_outcome.schedule[0] == tuple(map(int, legal_outcome.schedule[0]))

    def test_online_checker_ran(self, legal_outcome):
        assert legal_outcome.states_checked > 0

    def test_run_is_deterministic(self, legal_outcome):
        again = run_case(generate_case(LEGAL_1D, 0))
        assert again.schedule == legal_outcome.schedule
        assert outcome_fingerprint(again) == outcome_fingerprint(legal_outcome)


class TestViolationClassification:
    def test_below_bound_violation_found_and_labeled(self):
        # At n = (d+2)f the paper predicts failures; some seed in a small
        # budget must produce one, classified as a violation (not error).
        for seed in range(16):
            outcome = run_case(generate_case(BELOW_1D, seed))
            if outcome.status == "violation":
                assert outcome.violation is not None
                assert outcome.violation.kind
                assert outcome.error is None
                return
        pytest.fail("no violation found below the resilience bound")


class TestReplay:
    def test_replay_reproduces_fingerprint(self, legal_outcome):
        case = legal_outcome.case
        replayed = replay_case(case, case.fault_plan, legal_outcome.schedule)
        assert replayed.status == legal_outcome.status
        assert replayed.schedule == legal_outcome.schedule
        assert outcome_fingerprint(replayed) == outcome_fingerprint(legal_outcome)

    def test_fingerprint_sensitive_to_schedule(self, legal_outcome):
        # An edited schedule deterministically degrades (ReplayScheduler
        # falls back) — the fingerprint must expose any divergence.
        case = legal_outcome.case
        truncated = replay_case(
            case, case.fault_plan, legal_outcome.schedule[: len(legal_outcome.schedule) // 2]
        )
        if truncated.schedule != legal_outcome.schedule:
            assert outcome_fingerprint(truncated) != outcome_fingerprint(legal_outcome)
